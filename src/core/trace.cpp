#include "core/trace.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <ostream>
#include <thread>

#include "core/allotment_lp.hpp"
#include "core/list_scheduler.hpp"
#include "model/serialization.hpp"
#include "support/stopwatch.hpp"

namespace malsched::core {

namespace {

using model::wire::append_f64;
using model::wire::append_i32;
using model::wire::append_i64;
using model::wire::append_string;
using model::wire::append_u64;
using model::wire::append_u8;

constexpr char kTraceMagic[] = "malsched-trace";
constexpr std::size_t kTraceMagicLen = sizeof(kTraceMagic) - 1;

/// Largest StatusCode value the codec accepts — keep in sync with the enum
/// in status.hpp (new codes extend the range, never reorder it).
constexpr std::uint8_t kMaxStatusByte =
    static_cast<std::uint8_t>(StatusCode::kUnknownPolicy);

Status malformed(const std::string& detail) {
  return Status::error(StatusCode::kMalformedRecord, "trace record: " + detail);
}

/// Reads a presence/bool byte, enforcing the canonical 0/1 encoding so that
/// decode -> encode reproduces the input bytes exactly.
bool read_flag(std::string_view in, std::size_t& offset, bool& flag) {
  std::uint8_t byte = 0;
  if (!model::wire::read_u8(in, offset, byte)) return false;
  if (byte > 1) return false;
  flag = byte != 0;
  return true;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

TraceRequestOptions make_trace_options(const SchedulerOptions& options) {
  TraceRequestOptions out;
  out.present = true;
  out.lp_mode = static_cast<std::uint8_t>(options.lp.mode);
  out.piece_stride = options.lp.piece_stride;
  out.refine_stride = options.lp.refine_stride;
  out.bisection_tolerance = options.lp.bisection_tolerance;
  out.dual_reoptimize = options.lp.dual_reoptimize;
  out.list_priority = static_cast<std::uint8_t>(options.priority);
  out.has_rho = options.rho.has_value();
  out.rho = options.rho.value_or(0.0);
  out.has_mu = options.mu.has_value();
  out.mu = options.mu.value_or(0);
  out.retry_max_attempts = options.retry.max_attempts;
  out.rounding_rule = static_cast<std::uint8_t>(options.rounding);
  return out;
}

SchedulerOptions apply_trace_options(const TraceRequestOptions& traced,
                                     SchedulerOptions base) {
  if (!traced.present) return base;
  base.lp.mode = static_cast<LpMode>(traced.lp_mode);
  base.lp.piece_stride = traced.piece_stride;
  base.lp.refine_stride = traced.refine_stride;
  base.lp.bisection_tolerance = traced.bisection_tolerance;
  base.lp.dual_reoptimize = traced.dual_reoptimize;
  base.priority = static_cast<ListPriority>(traced.list_priority);
  base.rho = traced.has_rho ? std::optional<double>(traced.rho) : std::nullopt;
  base.mu = traced.has_mu ? std::optional<int>(traced.mu) : std::nullopt;
  base.retry.max_attempts = traced.retry_max_attempts;
  base.rounding = static_cast<RoundingRule>(traced.rounding_rule);
  return base;
}

void append_trace_options(std::string& out, const TraceRequestOptions& o) {
  append_u8(out, o.present ? 1 : 0);
  append_u8(out, o.lp_mode);
  append_i32(out, o.piece_stride);
  append_i32(out, o.refine_stride);
  append_f64(out, o.bisection_tolerance);
  append_u8(out, o.dual_reoptimize ? 1 : 0);
  append_u8(out, o.list_priority);
  append_u8(out, o.has_rho ? 1 : 0);
  append_f64(out, o.rho);
  append_u8(out, o.has_mu ? 1 : 0);
  append_i32(out, o.mu);
  append_i32(out, o.retry_max_attempts);
  append_u8(out, o.rounding_rule);
}

Status read_trace_options(std::string_view in, std::size_t& offset,
                          TraceRequestOptions& out) {
  TraceRequestOptions o;
  if (!read_flag(in, offset, o.present) ||
      !model::wire::read_u8(in, offset, o.lp_mode) ||
      !model::wire::read_i32(in, offset, o.piece_stride) ||
      !model::wire::read_i32(in, offset, o.refine_stride) ||
      !model::wire::read_f64(in, offset, o.bisection_tolerance) ||
      !read_flag(in, offset, o.dual_reoptimize) ||
      !model::wire::read_u8(in, offset, o.list_priority) ||
      !read_flag(in, offset, o.has_rho) ||
      !model::wire::read_f64(in, offset, o.rho) ||
      !read_flag(in, offset, o.has_mu) ||
      !model::wire::read_i32(in, offset, o.mu) ||
      !model::wire::read_i32(in, offset, o.retry_max_attempts) ||
      !model::wire::read_u8(in, offset, o.rounding_rule)) {
    return malformed("truncated options block");
  }
  if (o.lp_mode > static_cast<std::uint8_t>(LpMode::kAuto)) {
    return malformed("unknown LP mode " + std::to_string(o.lp_mode));
  }
  if (o.list_priority >
      static_cast<std::uint8_t>(ListPriority::kCriticalPathFirst)) {
    return malformed("unknown LIST priority rule " +
                     std::to_string(o.list_priority));
  }
  if (o.rounding_rule > static_cast<std::uint8_t>(RoundingRule::kDown)) {
    return malformed("unknown rounding rule " + std::to_string(o.rounding_rule));
  }
  out = o;
  return Status();
}

// Record layout (all fields always written, little-endian; presence flags
// say which are meaningful — the fixed shape keeps the codec canonical and
// is documented as a table in src/core/README.md):
//   f64 arrival_offset | i32 priority | u8 has_deadline | f64 deadline |
//   str client_tag | str policy (v2) | u8 options.present | u8 lp_mode |
//   i32 piece_stride | i32 refine_stride | f64 bisection_tolerance |
//   u8 dual_reoptimize | u8 list_priority | u8 has_rho | f64 rho |
//   u8 has_mu | i32 mu | i32 retry_max_attempts | u8 rounding_rule (v2) |
//   instance (binary codec) | u8 status | f64 lower_bound | f64 makespan |
//   i64 lp_pivots | i32 attempts | u8 degraded | f64 wall_seconds |
//   u64 group | u64 sequence
std::string encode_trace_record(const TraceRecord& record) {
  std::string out;
  append_f64(out, record.arrival_offset_seconds);
  append_i32(out, record.priority);
  append_u8(out, record.has_deadline ? 1 : 0);
  append_f64(out, record.deadline_seconds);
  append_string(out, record.client_tag);
  append_string(out, record.policy);
  append_trace_options(out, record.options);
  model::append_instance_binary(out, record.instance);
  const TraceOutcome& t = record.outcome;
  append_u8(out, static_cast<std::uint8_t>(t.status));
  append_f64(out, t.lower_bound);
  append_f64(out, t.makespan);
  append_i64(out, t.lp_pivots);
  append_i32(out, t.attempts);
  append_u8(out, t.degraded ? 1 : 0);
  append_f64(out, t.wall_seconds);
  append_u64(out, t.group);
  append_u64(out, t.sequence);
  return out;
}

Status decode_trace_record(std::string_view payload, TraceRecord& out) {
  using model::wire::read_f64;
  using model::wire::read_i32;
  using model::wire::read_i64;
  using model::wire::read_string;
  using model::wire::read_u64;
  using model::wire::read_u8;

  TraceRecord record;
  std::size_t at = 0;
  if (!read_f64(payload, at, record.arrival_offset_seconds) ||
      !read_i32(payload, at, record.priority) ||
      !read_flag(payload, at, record.has_deadline) ||
      !read_f64(payload, at, record.deadline_seconds) ||
      !read_string(payload, at, record.client_tag) ||
      !read_string(payload, at, record.policy)) {
    return malformed("truncated request header");
  }
  const Status options_status = read_trace_options(payload, at, record.options);
  if (!options_status.ok()) return options_status;
  const Status instance_status =
      model::read_instance_binary(payload, at, record.instance);
  if (!instance_status.ok()) return instance_status;
  TraceOutcome& t = record.outcome;
  std::uint8_t status_byte = 0;
  if (!read_u8(payload, at, status_byte) ||
      !read_f64(payload, at, t.lower_bound) ||
      !read_f64(payload, at, t.makespan) ||
      !read_i64(payload, at, t.lp_pivots) ||
      !read_i32(payload, at, t.attempts) ||
      !read_flag(payload, at, t.degraded) ||
      !read_f64(payload, at, t.wall_seconds) ||
      !read_u64(payload, at, t.group) || !read_u64(payload, at, t.sequence)) {
    return malformed("truncated outcome block");
  }
  if (status_byte > kMaxStatusByte) {
    return malformed("unknown status code " + std::to_string(status_byte));
  }
  t.status = static_cast<StatusCode>(status_byte);
  if (at != payload.size()) {
    return malformed(std::to_string(payload.size() - at) +
                     " trailing bytes after the outcome block");
  }
  out = std::move(record);
  return Status();
}

// ---- Whole-trace I/O ------------------------------------------------------

Status save_trace(std::ostream& os, const Trace& trace) {
  std::string header;
  header.append(kTraceMagic, kTraceMagicLen);
  append_u8(header, kTraceVersion);
  model::wire::append_u32(header,
                          static_cast<std::uint32_t>(trace.records.size()));
  model::write_frame(os, header);
  for (const TraceRecord& record : trace.records) {
    model::write_frame(os, encode_trace_record(record));
  }
  if (!os) {
    return Status::error(StatusCode::kInternalError,
                         "write error while saving the trace");
  }
  return Status();
}

Status load_trace(std::istream& is, Trace& out) {
  std::string payload;
  Status status = model::read_frame(is, payload);
  if (!status.ok()) return status;
  if (payload.size() != kTraceMagicLen + 5 ||
      payload.compare(0, kTraceMagicLen, kTraceMagic) != 0) {
    return Status::error(StatusCode::kCorruptFrame,
                         "not a malsched trace (bad header frame)");
  }
  std::size_t at = kTraceMagicLen;
  std::uint8_t version = 0;
  std::uint32_t count = 0;
  model::wire::read_u8(payload, at, version);
  model::wire::read_u32(payload, at, count);
  if (version != kTraceVersion) {
    return Status::error(StatusCode::kCorruptFrame,
                         "unsupported trace version " + std::to_string(version) +
                             " (this reader speaks v" +
                             std::to_string(kTraceVersion) + ")");
  }
  Trace trace;
  trace.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    status = model::read_frame(is, payload);
    if (!status.ok()) {
      return Status::error(status.code(), "record " + std::to_string(i) + ": " +
                                              status.message());
    }
    TraceRecord record;
    status = decode_trace_record(payload, record);
    if (!status.ok()) {
      return Status::error(status.code(), "record " + std::to_string(i) + ": " +
                                              status.message());
    }
    trace.records.push_back(std::move(record));
  }
  out = std::move(trace);
  return Status();
}

Status save_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::error(StatusCode::kInternalError,
                         "cannot open " + path + " for writing");
  }
  return save_trace(os, trace);
}

Status load_trace_file(const std::string& path, Trace& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::error(StatusCode::kInternalError, "cannot open " + path);
  }
  return load_trace(is, out);
}

// ---- Recorder -------------------------------------------------------------

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

std::size_t TraceRecorder::record_arrival(const ScheduleRequest& request) {
  const double offset = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - epoch_)
                            .count();
  return record_arrival(request, offset);
}

std::size_t TraceRecorder::record_arrival(const ScheduleRequest& request,
                                          double offset_seconds) {
  TraceRecord record;
  record.arrival_offset_seconds = offset_seconds;
  record.instance = request.instance;
  if (request.options.has_value()) {
    record.options = make_trace_options(*request.options);
  }
  record.priority = request.priority;
  record.has_deadline = request.deadline_seconds.has_value();
  record.deadline_seconds = request.deadline_seconds.value_or(0.0);
  record.client_tag = request.client_tag;
  record.policy = request.policy;
  record.outcome.status = StatusCode::kInternalError;  // until completion
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

void TraceRecorder::record_outcome(std::size_t index,
                                   const ServiceResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= records_.size()) return;
  TraceOutcome& out = records_[index].outcome;
  out.status = result.status.code();
  out.lower_bound = result.result.fractional.lower_bound;
  out.makespan = result.result.makespan;
  out.lp_pivots = result.lp_pivots;
  out.attempts = result.attempts;
  out.degraded = result.degraded;
  out.wall_seconds = result.seconds;
  out.group = result.group;
  out.sequence = result.sequence;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

Trace TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Trace trace;
  trace.records = records_;
  return trace;
}

// ---- Replayer -------------------------------------------------------------

ReplayReport replay_trace(const Trace& trace, const ReplayOptions& options) {
  ReplayReport report;
  report.requests = trace.records.size();

  ServiceOptions service_options = options.service;
  // One runner per group pins within-group execution to exact submission
  // order — the precondition for pivot-for-pivot reproduction at any worker
  // count (see the determinism contract in trace.hpp).
  service_options.max_group_runners = 1;
  service_options.trace = options.record_into;
  SchedulerService service(service_options);

  std::vector<TicketHandle> handles;
  handles.reserve(trace.records.size());
  support::Stopwatch wall;
  const auto start = std::chrono::steady_clock::now();
  for (const TraceRecord& record : trace.records) {
    if (options.speed > 0.0) {
      const double target_offset = record.arrival_offset_seconds / options.speed;
      std::this_thread::sleep_until(
          start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(target_offset)));
    }
    ScheduleRequest request;
    request.instance = record.instance;
    if (record.options.present) {
      request.options =
          apply_trace_options(record.options, service_options.scheduler);
    }
    request.priority = record.priority;
    if (record.has_deadline) request.deadline_seconds = record.deadline_seconds;
    request.client_tag = record.client_tag;
    request.policy = options.policy_override.empty() ? record.policy
                                                     : options.policy_override;
    TicketHandle handle = service.submit(std::move(request));
    if (record.outcome.status == StatusCode::kCancelled) {
      // Re-issue the recorded cancellation immediately: a queued job drops
      // at dequeue exactly as recorded; a job a fast worker already picked
      // up aborts between pivots — either way the status reproduces.
      handle.cancel();
    }
    handles.push_back(handle);
  }
  service.drain();

  const auto add_mismatch = [&report](std::size_t index, const char* field,
                                      std::string recorded, std::string replayed) {
    ReplayMismatch mismatch;
    mismatch.index = index;
    mismatch.field = field;
    mismatch.recorded = std::move(recorded);
    mismatch.replayed = std::move(replayed);
    report.mismatches.push_back(std::move(mismatch));
  };

  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const TraceRecord& record = trace.records[i];
    const std::size_t before = report.mismatches.size();
    const auto replayed = handles[i].try_get();
    if (!replayed.has_value()) {
      add_mismatch(i, "claim", to_string(record.outcome.status),
                   "result unclaimable after drain");
      continue;
    }
    if (replayed->status.code() != record.outcome.status) {
      add_mismatch(i, "status", to_string(record.outcome.status),
                   to_string(replayed->status.code()));
    }
    if (replayed->client_tag != record.client_tag) {
      add_mismatch(i, "client_tag", record.client_tag, replayed->client_tag);
    }
    if (record.outcome.status == StatusCode::kOk && replayed->status.ok()) {
      report.recorded_pivots += record.outcome.lp_pivots;
      report.replayed_pivots += replayed->result.fractional.lp_iterations;
      const double bound = replayed->result.fractional.lower_bound;
      if (double_bits(bound) != double_bits(record.outcome.lower_bound)) {
        add_mismatch(i, "lower_bound",
                     std::to_string(record.outcome.lower_bound),
                     std::to_string(bound));
      }
      if (options.compare_pivots) {
        const std::int64_t pivots = replayed->result.fractional.lp_iterations;
        if (pivots != record.outcome.lp_pivots) {
          add_mismatch(i, "lp_pivots", std::to_string(record.outcome.lp_pivots),
                       std::to_string(pivots));
        }
        if (double_bits(replayed->result.makespan) !=
            double_bits(record.outcome.makespan)) {
          add_mismatch(i, "makespan", std::to_string(record.outcome.makespan),
                       std::to_string(replayed->result.makespan));
        }
      }
    }
    if (report.mismatches.size() == before) ++report.matched;
  }
  report.wall_seconds = wall.seconds();
  report.stats = service.stats();
  return report;
}

}  // namespace malsched::core
