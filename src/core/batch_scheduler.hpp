// Batched scheduling pipeline: run the two-phase algorithm over many
// independent instances with shared solver state.
//
// Since the SchedulerService redesign this is a thin compatibility wrapper:
// schedule_all wraps every instance in a default-priority, no-deadline
// ScheduleRequest (via SchedulerService::submit_many), submits the lot to a
// private core::SchedulerService and drains it — one call, one barrier,
// same result layout as before. The
// service supplies the machinery that used to live here (group-affine
// dispatch by LP-structure fingerprint, warm-start reuse, the thread pool)
// plus what the old implementation could not do: sub-slice work stealing
// for oversized groups, and a single shared bounded WarmStartCache, which
// makes cross-batch warm-start reuse deterministic at any worker count (the
// old per-worker caches only guaranteed reuse with one worker). Callers
// that want streaming admission, per-ticket results, or typed errors should
// use SchedulerService directly (scheduler_service.hpp).
//
// bench/perf_pipeline.cpp --batch measures the pipeline against the
// sequential cold baseline and emits BENCH_batch.json; --stream measures
// streaming admission against this barrier and emits BENCH_stream.json.
#pragma once

#include <cstddef>
#include <vector>

#include "core/scheduler.hpp"
#include "core/scheduler_service.hpp"
#include "model/instance.hpp"

namespace malsched::core {

struct BatchOptions {
  /// Batch defaults differ from the single-instance defaults in two places:
  /// LpMode::kAuto (self-tuning direct-vs-bisection routing) and
  /// refine_stride = 4 (coarse-to-fine LP refinement); both are exact.
  BatchOptions();

  /// Per-instance pipeline options (rho/mu/priority/LP knobs).
  SchedulerOptions scheduler;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Route every solve through the service's shared warm-start cache, so
  /// instances of the same LP structure warm-start each other. The cache
  /// lives as long as the BatchScheduler and is shared by all workers, so
  /// later batches deterministically reuse bases from earlier ones at any
  /// worker count.
  bool reuse_solver_state = true;
  /// LRU entry bound of that cache. The batch default stays 0 = unbounded
  /// (matching the pre-service per-worker caches: a batch run over a fixed
  /// instance set wants every structure warm); long-lived callers that feed
  /// many distinct structures should bound it — or use SchedulerService,
  /// whose default is bounded.
  std::size_t cache_capacity = 0;
};

/// Aggregate solver statistics of one schedule_all call.
struct BatchStats {
  double wall_seconds = 0.0;        ///< end-to-end time of schedule_all
  /// Sum of per-instance pipeline times. Instances run concurrently (the
  /// draining caller helps execute, so even num_threads = 1 has two
  /// executors), so on an oversubscribed host the timesliced per-instance
  /// clocks can sum past wall_seconds.
  double sum_item_seconds = 0.0;
  std::size_t workers = 1;
  std::size_t groups = 0;           ///< distinct LP-structure groups
  long lp_pivots = 0;
  int lp_solves = 0;
  int lp_warm_starts = 0;
  /// lp_warm_starts / lp_solves: the fraction of LP solves that started
  /// from a reused basis (probe chains, refinements, cache hits).
  double warm_start_hit_rate = 0.0;
  int direct_solves = 0;     ///< instances resolved to the direct LP (9)
  int bisection_solves = 0;  ///< instances resolved to deadline bisection
};

struct BatchResult {
  std::vector<SchedulerResult> results;  ///< index-aligned with the input
  std::vector<double> seconds;           ///< per-instance pipeline time
  BatchStats stats;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(BatchOptions options = {});

  /// Schedules every instance and returns per-instance results plus
  /// aggregate stats. With reuse_solver_state off the results are
  /// bit-identical to per-instance schedule_malleable_dag calls; with it on,
  /// LP objectives (the C* bounds) still agree to solver tolerance, but a
  /// warm start may land on a different vertex of a degenerate optimal face,
  /// so schedules can differ within the same quality certificate.
  /// Implemented as submit-all-then-drain on the internal service; a ticket
  /// that completes with an error (invalid instance, LP failure) is
  /// rethrown as std::runtime_error after the whole batch has drained.
  BatchResult schedule_all(const std::vector<model::Instance>& instances);

  std::size_t num_workers() const { return service_.num_workers(); }

 private:
  BatchOptions options_;
  SchedulerService service_;
};

}  // namespace malsched::core
