// Batched scheduling pipeline: run the two-phase algorithm over many
// independent instances with shared solver state.
//
// A scheduling service rarely sees one DAG in isolation — it sees streams of
// related instances (the same workflow shape resubmitted with fresh task-time
// estimates, parameter sweeps over one instance, nightly batches of a few
// recurring pipelines). BatchScheduler exploits that: instances are grouped
// by the structural fingerprint of their Phase-1 LP (WarmStartCache) and each
// group is dispatched to the thread pool as one unit, so a worker solves
// structurally identical LPs back to back, each warm-started from the
// previous one's final basis. Combined with LpMode::kAuto (per-instance
// direct-vs-bisection routing) and cross-stride refinement, the batch path
// beats the one-at-a-time cold pipeline even on a single core; on multicore
// hosts the groups additionally run in parallel.
//
// bench/perf_pipeline.cpp --batch measures the pipeline against the
// sequential cold baseline and emits BENCH_batch.json.
#pragma once

#include <cstddef>
#include <vector>

#include "core/scheduler.hpp"
#include "model/instance.hpp"
#include "support/thread_pool.hpp"

namespace malsched::core {

struct BatchOptions {
  /// Batch defaults differ from the single-instance defaults in two places:
  /// LpMode::kAuto (self-tuning direct-vs-bisection routing) and
  /// refine_stride = 4 (coarse-to-fine LP refinement); both are exact.
  BatchOptions();

  /// Per-instance pipeline options (rho/mu/priority/LP knobs).
  SchedulerOptions scheduler;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Give every worker a persistent WarmStartCache so instances of the same
  /// LP structure warm-start each other (overrides scheduler.lp.warm_cache).
  /// Caches live as long as the BatchScheduler, so later batches MAY reuse
  /// bases from earlier ones: groups are not pinned to workers, so with
  /// several workers a group can land on a worker whose cache has not seen
  /// its structure (reuse is deterministic only with num_threads = 1).
  bool reuse_solver_state = true;
};

/// Aggregate solver statistics of one schedule_all call.
struct BatchStats {
  double wall_seconds = 0.0;        ///< end-to-end time of schedule_all
  double sum_item_seconds = 0.0;    ///< sum of per-instance pipeline times
  std::size_t workers = 1;
  std::size_t groups = 0;           ///< distinct LP-structure groups
  long lp_pivots = 0;
  int lp_solves = 0;
  int lp_warm_starts = 0;
  /// lp_warm_starts / lp_solves: the fraction of LP solves that started
  /// from a reused basis (probe chains, refinements, cache hits).
  double warm_start_hit_rate = 0.0;
  int direct_solves = 0;     ///< instances resolved to the direct LP (9)
  int bisection_solves = 0;  ///< instances resolved to deadline bisection
};

struct BatchResult {
  std::vector<SchedulerResult> results;  ///< index-aligned with the input
  std::vector<double> seconds;           ///< per-instance pipeline time
  BatchStats stats;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(BatchOptions options = {});

  /// Schedules every instance and returns per-instance results plus
  /// aggregate stats. With reuse_solver_state off the results are
  /// bit-identical to per-instance schedule_malleable_dag calls; with it on,
  /// LP objectives (the C* bounds) still agree to solver tolerance, but a
  /// warm start may land on a different vertex of a degenerate optimal face,
  /// so schedules can differ within the same quality certificate. Dispatch
  /// is by structure group, so same-shaped instances share a worker's cache.
  BatchResult schedule_all(const std::vector<model::Instance>& instances);

  std::size_t num_workers() const { return pool_.size(); }

 private:
  BatchOptions options_;
  support::ThreadPool pool_;
  std::vector<WarmStartCache> caches_;  ///< one per worker, persistent
};

}  // namespace malsched::core
