#include "core/list_scheduler.hpp"

#include <cstdint>
#include <queue>
#include <vector>

#include "core/timeline.hpp"
#include "support/assert.hpp"

namespace malsched::core {

namespace {

/// Ready-queue entry: a task plus its earliest feasible start, computed at
/// timeline revision `revision`. Usage only ever grows, so a cached start is
/// a valid lower bound at any later revision — stale entries are re-priced
/// lazily when they reach the top of the queue.
struct ReadyEntry {
  double est = 0.0;
  std::uint64_t revision = 0;
  int task = -1;
};

}  // namespace

Schedule list_schedule(const model::Instance& instance, const Allotment& alpha_prime,
                       int mu, ListPriority priority) {
  const int n = instance.num_tasks();
  MALSCHED_ASSERT(static_cast<int>(alpha_prime.size()) == n);
  MALSCHED_ASSERT(mu >= 1 && mu <= instance.m);

  // The second-phase allotment alpha: l_j = min(l'_j, mu).
  Allotment allotment(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const int lp = alpha_prime[static_cast<std::size_t>(j)];
    MALSCHED_ASSERT(lp >= 1 && lp <= instance.m);
    allotment[static_cast<std::size_t>(j)] = std::min(lp, mu);
  }

  // Bottom levels (longest tail through successors, inclusive) under the
  // capped allotment, for the kCriticalPathFirst rule.
  std::vector<double> bottom_level(static_cast<std::size_t>(n), 0.0);
  if (priority == ListPriority::kCriticalPathFirst) {
    const auto order = graph::topological_order(instance.dag);
    MALSCHED_ASSERT(order.has_value());
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const int v = *it;
      const auto vu = static_cast<std::size_t>(v);
      double best_succ = 0.0;
      for (graph::NodeId s : instance.dag.successors(v)) {
        best_succ = std::max(best_succ, bottom_level[static_cast<std::size_t>(s)]);
      }
      bottom_level[vu] = instance.task(v).processing_time(allotment[vu]) + best_succ;
    }
  }

  Schedule schedule;
  schedule.allotment = allotment;
  schedule.start.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<int> unscheduled_preds(static_cast<std::size_t>(n), 0);
  std::vector<double> ready_time(static_cast<std::size_t>(n), 0.0);

  // Min-queue keyed (earliest start, bottom level desc, id) — the smallest
  // earliest feasible start wins, ties resolved per the selection rule.
  // Ties are exact (a heap needs a strict weak order): starts equal as
  // doubles tie-break by rule, sub-epsilon differences order by start.
  const auto later = [&](const ReadyEntry& a, const ReadyEntry& b) {
    if (a.est != b.est) return a.est > b.est;
    if (priority == ListPriority::kCriticalPathFirst) {
      const double level_a = bottom_level[static_cast<std::size_t>(a.task)];
      const double level_b = bottom_level[static_cast<std::size_t>(b.task)];
      if (level_a != level_b) return level_a < level_b;
    }
    return a.task > b.task;
  };
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, decltype(later)> ready(later);

  ResourceTimeline timeline(instance.m);
  const auto push_ready = [&](int task) {
    const auto tu = static_cast<std::size_t>(task);
    const double duration = instance.task(task).processing_time(allotment[tu]);
    ready.push(ReadyEntry{
        timeline.earliest_fit(ready_time[tu], duration, allotment[tu]),
        timeline.revision(), task});
  };

  for (int j = 0; j < n; ++j) {
    unscheduled_preds[static_cast<std::size_t>(j)] =
        static_cast<int>(instance.dag.predecessors(j).size());
    if (unscheduled_preds[static_cast<std::size_t>(j)] == 0) push_ready(j);
  }

  for (int placed = 0; placed < n; ++placed) {
    MALSCHED_ASSERT_MSG(!ready.empty(), "cycle in precedence graph");
    // Pop until the top entry's start is current. A stale entry is a lower
    // bound: re-pricing it can only push it later in the order, so the first
    // fresh top is the true minimum.
    ReadyEntry best = ready.top();
    ready.pop();
    while (best.revision != timeline.revision()) {
      const auto bu = static_cast<std::size_t>(best.task);
      const double duration = instance.task(best.task).processing_time(allotment[bu]);
      // Resume the scan from the cached start instead of the ready time:
      // no feasible start existed before it, and added usage cannot create
      // one, so the result is identical and the walk skips the busy prefix.
      best.est = timeline.earliest_fit(best.est, duration, allotment[bu]);
      best.revision = timeline.revision();
      ready.push(best);
      best = ready.top();
      ready.pop();
    }

    const auto bu = static_cast<std::size_t>(best.task);
    const double duration = instance.task(best.task).processing_time(allotment[bu]);
    timeline.place(best.est, duration, allotment[bu]);
    schedule.start[bu] = best.est;

    const double completion = best.est + duration;
    for (graph::NodeId succ : instance.dag.successors(best.task)) {
      const auto su = static_cast<std::size_t>(succ);
      ready_time[su] = std::max(ready_time[su], completion);
      if (--unscheduled_preds[su] == 0) push_ready(succ);
    }
  }
  return schedule;
}

}  // namespace malsched::core
