#include "core/list_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "core/timeline.hpp"
#include "support/assert.hpp"

namespace malsched::core {

Schedule list_schedule(const model::Instance& instance, const Allotment& alpha_prime,
                       int mu, ListPriority priority) {
  const int n = instance.num_tasks();
  MALSCHED_ASSERT(static_cast<int>(alpha_prime.size()) == n);
  MALSCHED_ASSERT(mu >= 1 && mu <= instance.m);

  // The second-phase allotment alpha: l_j = min(l'_j, mu).
  Allotment allotment(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const int lp = alpha_prime[static_cast<std::size_t>(j)];
    MALSCHED_ASSERT(lp >= 1 && lp <= instance.m);
    allotment[static_cast<std::size_t>(j)] = std::min(lp, mu);
  }

  // Bottom levels (longest tail through successors, inclusive) under the
  // capped allotment, for the kCriticalPathFirst rule.
  std::vector<double> bottom_level(static_cast<std::size_t>(n), 0.0);
  if (priority == ListPriority::kCriticalPathFirst) {
    const auto order = graph::topological_order(instance.dag);
    MALSCHED_ASSERT(order.has_value());
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const int v = *it;
      const auto vu = static_cast<std::size_t>(v);
      double best_succ = 0.0;
      for (graph::NodeId s : instance.dag.successors(v)) {
        best_succ = std::max(best_succ, bottom_level[static_cast<std::size_t>(s)]);
      }
      bottom_level[vu] = instance.task(v).processing_time(allotment[vu]) + best_succ;
    }
  }

  Schedule schedule;
  schedule.allotment = allotment;
  schedule.start.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<int> unscheduled_preds(static_cast<std::size_t>(n), 0);
  std::vector<double> ready_time(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> scheduled(static_cast<std::size_t>(n), false);
  std::vector<int> ready;
  for (int j = 0; j < n; ++j) {
    unscheduled_preds[static_cast<std::size_t>(j)] =
        static_cast<int>(instance.dag.predecessors(j).size());
    if (unscheduled_preds[static_cast<std::size_t>(j)] == 0) ready.push_back(j);
  }

  ResourceTimeline timeline(instance.m);
  for (int placed = 0; placed < n; ++placed) {
    MALSCHED_ASSERT_MSG(!ready.empty(), "cycle in precedence graph");
    // Earliest feasible start for each ready task under the current partial
    // schedule; pick the smallest (ties: smallest task id, matching the
    // deterministic variant of Graham's rule).
    int best = -1;
    double best_start = std::numeric_limits<double>::infinity();
    for (int candidate : ready) {
      const auto cu = static_cast<std::size_t>(candidate);
      const double duration =
          instance.task(candidate).processing_time(allotment[cu]);
      const double est =
          timeline.earliest_fit(ready_time[cu], duration, allotment[cu]);
      bool better = est < best_start - 1e-12;
      if (!better && est < best_start + 1e-12 && best >= 0) {
        if (priority == ListPriority::kCriticalPathFirst) {
          const double cand_level = bottom_level[cu];
          const double best_level = bottom_level[static_cast<std::size_t>(best)];
          better = cand_level > best_level + 1e-12 ||
                   (cand_level > best_level - 1e-12 && candidate < best);
        } else {
          better = candidate < best;
        }
      }
      if (better) {
        best = candidate;
        best_start = est;
      }
    }
    MALSCHED_ASSERT(best >= 0);
    const auto bu = static_cast<std::size_t>(best);
    const double duration = instance.task(best).processing_time(allotment[bu]);
    timeline.place(best_start, duration, allotment[bu]);
    schedule.start[bu] = best_start;
    scheduled[bu] = true;
    ready.erase(std::find(ready.begin(), ready.end(), best));

    const double completion = best_start + duration;
    for (graph::NodeId succ : instance.dag.successors(best)) {
      const auto su = static_cast<std::size_t>(succ);
      ready_time[su] = std::max(ready_time[su], completion);
      if (--unscheduled_preds[su] == 0) ready.push_back(succ);
    }
  }
  return schedule;
}

}  // namespace malsched::core
