// The streaming scheduling service: submit instances as they arrive.
//
// BatchScheduler admits work one vector per batch — a barrier that a
// service under live traffic cannot afford. SchedulerService is the
// long-lived façade underneath: `submit` admits a single instance and
// returns a Ticket immediately; workers pick the job up behind the caller's
// back; `try_get`/`wait` deliver the result (or a typed error) per ticket
// and `drain` flushes everything outstanding.
//
// Dispatch is group-affine: at admission every instance is fingerprinted by
// its Phase-1 LP structure (WarmStartCache::fingerprint) and queued under
// that group; one runner per group processes its jobs back to back, so
// structurally identical LPs warm-start each other. When a group's queue
// outgrows one sub-slice (`steal_slice`) an additional runner is
// dispatched, so idle workers steal whole sub-slices of an oversized group
// instead of letting it serialize on one worker. All runners share ONE
// bounded (LRU) WarmStartCache, which is what makes cross-batch reuse
// deterministic at any worker count: a structure solved once warm-starts
// every later solve of that structure no matter which worker it lands on
// (the per-worker caches of the old BatchScheduler made that a scheduling
// accident).
//
// Errors travel as data: an invalid instance (cyclic DAG, zero work, table
// mismatch), an assumption violation (opt-in check) or a numeric LP failure
// completes the ticket with a typed Status instead of taking the process
// down (status.hpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/scheduler.hpp"
#include "core/status.hpp"
#include "model/instance.hpp"
#include "support/thread_pool.hpp"

namespace malsched::core {

struct ServiceOptions {
  /// Service defaults match the batch pipeline: LpMode::kAuto and
  /// refine_stride = 4 (both exact; see BatchOptions).
  ServiceOptions();

  /// Per-instance pipeline defaults; a per-submit override wins.
  SchedulerOptions scheduler;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Route every solve through the shared warm-start cache (overrides
  /// whatever warm_cache the per-submit options carry).
  bool reuse_solver_state = true;
  /// LRU entry bound of the shared WarmStartCache (0 = unbounded). Each LP
  /// structure costs at most a few entries (fine/coarse direct + probe), so
  /// the bound is effectively "how many recent structures stay warm".
  std::size_t cache_capacity = 128;
  /// A runner takes its group's pending jobs in sub-slices of this size and
  /// re-dispatches the group while more than a slice is left, so idle
  /// workers steal the remainder of an oversized group.
  std::size_t steal_slice = 2;
  /// Cap on concurrent runners per group; 0 = pool size.
  std::size_t max_group_runners = 0;
  /// Check Assumptions 1 and 2 per task at admission and fail the ticket
  /// with kAssumptionViolation instead of scheduling outside the guarantee.
  bool enforce_assumptions = false;
};

/// Completion record of one ticket. `result` is meaningful iff status.ok().
struct ServiceResult {
  Status status;
  SchedulerResult result;
  double seconds = 0.0;      ///< pipeline time of this instance
  std::uint64_t group = 0;   ///< LP-structure fingerprint it was dispatched under
};

/// Monotonic counters since construction, plus the live cache snapshot.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< includes failed
  std::size_t failed = 0;     ///< completed with !status.ok()
  std::size_t pending = 0;    ///< submitted, result not yet produced
  std::size_t groups_seen = 0;     ///< distinct LP structures ever admitted
  std::size_t steals = 0;          ///< sub-slices taken while another runner held the group
  WarmStartCache::Stats cache;     ///< lookups/hits/stores/evictions
  std::size_t cache_entries = 0;   ///< current size of the shared cache
};

class SchedulerService {
 public:
  /// Opaque handle for one submitted instance. Tickets are issued in
  /// submission order (strictly increasing) and are single-consumption:
  /// the first try_get/wait that returns the result retires the ticket.
  using Ticket = std::uint64_t;

  explicit SchedulerService(ServiceOptions options = {});
  /// Drains outstanding work, then joins the workers. Unclaimed results are
  /// discarded.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Admits one instance (validated here — an invalid one completes its
  /// ticket immediately with a typed error) and returns without waiting for
  /// the solve. Thread-safe; the instance is owned by the service from here.
  Ticket submit(model::Instance instance);
  Ticket submit(model::Instance instance, const SchedulerOptions& options);

  /// submit() per element, preserving order; tickets[i] belongs to
  /// instances[i].
  std::vector<Ticket> submit_many(std::vector<model::Instance> instances);

  /// Non-blocking: the result if the ticket has completed (retiring it),
  /// nullopt while it is still pending, and a kUnknownTicket error result
  /// for a ticket never issued or already consumed.
  std::optional<ServiceResult> try_get(Ticket ticket);

  /// Blocks until the ticket completes and returns its result (retiring
  /// it). While waiting the calling thread helps execute queued pool work
  /// (ThreadPool::try_run_pending_task) instead of sleeping.
  ServiceResult wait(Ticket ticket);

  /// Blocks until every ticket submitted BEFORE this call has produced its
  /// result (the results stay claimable afterwards); submissions racing in
  /// from other threads are not waited for, so a drain under continuous
  /// traffic still returns. Also helps execute.
  void drain();

  ServiceStats stats() const;
  std::size_t num_workers() const { return pool_.size(); }

 private:
  struct Job {
    Ticket ticket = 0;
    model::Instance instance;
    SchedulerOptions options;
  };
  struct Group {
    std::deque<Job> pending;
    std::size_t runners = 0;
  };

  std::size_t runner_cap() const;
  /// Pre-admission validation -> typed Status (ok = admit).
  Status admission_status(const model::Instance& instance) const;
  /// Requires mutex_ held: dispatches one more runner for `group` when its
  /// backlog warrants it and the cap allows.
  void maybe_dispatch(std::uint64_t key, Group& group);
  /// Runner body: drains `key`'s queue in sub-slices until it is empty.
  void run_group(std::uint64_t key);
  ServiceResult run_job(Job& job, std::uint64_t key);
  void complete(Ticket ticket, ServiceResult result);

  ServiceOptions options_;
  WarmStartCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Ticket next_ticket_ = 1;
  std::unordered_map<std::uint64_t, Group> groups_;   ///< only groups with work
  std::unordered_set<std::uint64_t> groups_seen_;
  std::unordered_set<Ticket> inflight_;
  std::unordered_map<Ticket, ServiceResult> done_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t steals_ = 0;

  /// Last member: destroyed (joined) first, while the state above is alive.
  support::ThreadPool pool_;
};

}  // namespace malsched::core
