// The streaming scheduling service: submit requests as they arrive.
//
// BatchScheduler admits work one vector per batch — a barrier that a
// service under live traffic cannot afford. SchedulerService is the
// long-lived façade underneath: `submit` admits one ScheduleRequest and
// returns a TicketHandle immediately; workers pick the job up behind the
// caller's back; `try_get`/`wait` deliver the result (or a typed error) per
// ticket and `drain` flushes everything outstanding.
//
// The submission contract is a full request/response control plane, not
// just a queue:
//
//  * ADMISSION CONTROL — every submit is screened by the service's
//    AdmissionPolicy (max pending jobs overall / max queued per structure
//    group). An over-limit request completes its ticket immediately with
//    StatusCode::kRejected, so an overload wave bounces instead of growing
//    the queues without bound (the SpinJa lesson: bounded queues or one
//    burst serializes everything behind it).
//  * PRIORITIES — each group's queue is priority-ordered (higher first),
//    stable within a level, so urgent work overtakes the backlog while
//    default-priority traffic keeps exact FIFO order — which preserves both
//    warm-start affinity and the PR-3 pivot-for-pivot determinism.
//  * DEADLINES — a request may carry a relative deadline. Already expired
//    at admission -> immediate kDeadlineExceeded; expired while queued ->
//    swept at admission pressure / the watchdog tick (or dropped at
//    dequeue) without solving; expired mid-solve -> the lp::SolveControl
//    token threaded into the pivot loops stops the LP cooperatively.
//  * POLICIES — queue order within a priority level and admission-time
//    shedding are owned by a pluggable DispatchPolicy (core/policy.hpp),
//    selected service-wide by ServiceOptions::dispatch_policy and per
//    request by the ScheduleRequest::policy spec (core/policy_registry.hpp:
//    dispatch=/list=/round= tokens). The default "fifo" reproduces the
//    legacy order bit-for-bit.
//  * CANCELLATION — TicketHandle::cancel() (or cancel(Ticket)) flips the
//    same token: a queued job is dropped at dequeue, a running job aborts
//    between pivots, and the ticket completes with kCancelled carrying the
//    pivots it spent before stopping.
//
// Dispatch is group-affine: at admission every instance is fingerprinted by
// its Phase-1 LP structure (WarmStartCache::fingerprint) and queued under
// that group; one runner per group processes its jobs back to back, so
// structurally identical LPs warm-start each other. When a group's queue
// outgrows one sub-slice (`steal_slice`) an additional runner is
// dispatched, so idle workers steal whole sub-slices of an oversized group
// instead of letting it serialize on one worker. All runners share ONE
// bounded (LRU) WarmStartCache, which is what makes cross-batch reuse
// deterministic at any worker count.
//
// Errors travel as data: an invalid instance, an assumption violation, a
// numeric LP failure, a rejection, a cancellation or a missed deadline all
// complete the ticket with a typed Status instead of taking the process
// down (status.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/policy.hpp"
#include "core/scheduler.hpp"
#include "core/status.hpp"
#include "model/instance.hpp"
#include "support/thread_pool.hpp"

namespace malsched::core {

class TicketHandle;
class PeriodicHandle;
class TraceRecorder;
struct PeriodicState;

/// Load-shedding limits applied at submit time. A request over any limit
/// completes its ticket immediately with StatusCode::kRejected — the
/// caller learns synchronously that the service is saturated, and the
/// queues stay bounded under overload.
struct AdmissionPolicy {
  /// Maximum jobs admitted but not yet completed (queued + running) across
  /// the whole service; 0 = unlimited.
  std::size_t max_pending = 0;
  /// Maximum QUEUED jobs per structure group (the running job of a group
  /// does not count); 0 = unlimited. Caps how far one hot structure can
  /// back up behind its warm-start affinity.
  std::size_t max_pending_per_group = 0;
};

struct ServiceOptions {
  /// Service defaults match the batch pipeline: LpMode::kAuto and
  /// refine_stride = 4 (both exact; see BatchOptions).
  ServiceOptions();

  /// Per-instance pipeline defaults; a per-request override wins.
  SchedulerOptions scheduler;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t num_threads = 0;
  /// Route every solve through the shared warm-start cache (overrides
  /// whatever warm_cache the per-request options carry).
  bool reuse_solver_state = true;
  /// LRU entry bound of the shared WarmStartCache (0 = unbounded). Each LP
  /// structure costs at most a few entries (fine/coarse direct + probe), so
  /// the bound is effectively "how many recent structures stay warm".
  std::size_t cache_capacity = 128;
  /// A runner takes its group's pending jobs in sub-slices of this size and
  /// re-dispatches the group while more than a slice is left, so idle
  /// workers steal the remainder of an oversized group.
  std::size_t steal_slice = 2;
  /// Cap on concurrent runners per group; 0 = pool size.
  std::size_t max_group_runners = 0;
  /// Check Assumptions 1 and 2 per task at admission and fail the ticket
  /// with kAssumptionViolation instead of scheduling outside the guarantee.
  bool enforce_assumptions = false;
  /// Overload limits; the default (all zero) admits everything.
  AdmissionPolicy admission;
  /// Default dispatch policy, resolved through core::PolicyRegistry at
  /// construction (an unregistered name throws std::invalid_argument).
  /// "fifo" reproduces the pre-registry order bit-for-bit; see
  /// core/policy.hpp for "edf" / "wfq" / "edf-wfq". A per-request
  /// ScheduleRequest::policy spec overrides it for that request's group.
  std::string dispatch_policy = "fifo";
  /// Per-client_tag weights consumed by the WFQ policies; absent tags
  /// weigh 1.0.
  std::map<std::string, double> wfq_weights;
  /// Stall watchdog: a running job whose LP pivot heartbeat
  /// (lp::SolveControl::pivots) has not advanced for this many seconds is
  /// cooperatively interrupted and requeued on a fresh control token
  /// (charging one attempt of its RetryPolicy). 0 (the default) disables
  /// the watchdog — no monitor thread is started and the pivot sequence of
  /// every solve is untouched, preserving the deterministic baselines.
  double stall_timeout_seconds = 0.0;
  /// Sampling period of the watchdog thread (only read when the watchdog
  /// is enabled). Clamped below at 1 ms.
  double watchdog_poll_seconds = 0.01;
  /// Optional flight recorder (core/trace.hpp). When set, every submit is
  /// captured (arrival offset + full request, including ones refused at
  /// admission) and every completion attaches its outcome to the same
  /// record. Not owned; must outlive the service. nullptr = no recording.
  TraceRecorder* trace = nullptr;
};

/// One submission: the instance plus everything the service needs to
/// admit, order and bound it. The legacy submit(Instance[, options])
/// overloads build a default request (priority 0, no deadline, no tag).
struct ScheduleRequest {
  model::Instance instance;
  /// Pipeline options for this request; nullopt = the service defaults.
  std::optional<SchedulerOptions> options;
  /// Dequeue priority within the structure group: higher runs first, FIFO
  /// within a level (stable, so an all-default-priority stream reproduces
  /// the PR-3 order — and its pivot counts — exactly).
  int priority = 0;
  /// Relative deadline in seconds, measured from admission. nullopt = none;
  /// <= 0 is already expired and completes the ticket immediately with
  /// kDeadlineExceeded — before any other screen, since retrying a
  /// rejected request later can succeed while retrying an expired one
  /// cannot. NaN, infinity, and values beyond the steady clock's range
  /// (~100 years) are treated as "no deadline".
  std::optional<double> deadline_seconds;
  /// Opaque caller label, echoed verbatim on the ServiceResult.
  std::string client_tag;
  /// Policy spec (core/policy_registry.hpp): a bare dispatch-policy name
  /// ("edf-wfq") or comma-separated `dispatch=` / `list=` / `round=`
  /// tokens. Empty = the group's current dispatch and the request/service
  /// SchedulerOptions. An unknown name completes the ticket immediately
  /// with StatusCode::kUnknownPolicy listing the registered choices.
  std::string policy;
};

/// A recurring submission: `base` is re-submitted every `period_seconds`,
/// `occurrences` times in total (the first fires immediately). Every
/// occurrence shares the base instance's LP structure, so after the first
/// solve the rest warm-start from the shared cache — the scenario the
/// periodic pack in examples/ measures.
struct PeriodicRequest {
  ScheduleRequest base;
  double period_seconds = 0.0;
  int occurrences = 1;
};

/// Completion record of one ticket. `result` is meaningful iff status.ok().
struct ServiceResult {
  Status status;
  SchedulerResult result;
  double seconds = 0.0;      ///< pipeline time of this instance
  std::uint64_t group = 0;   ///< LP-structure fingerprint it was dispatched under
  std::string client_tag;    ///< echoed from the ScheduleRequest
  /// LP pivots spent on this ticket — also filled for kCancelled /
  /// kDeadlineExceeded tickets, where it proves the solve stopped early
  /// (strictly below the uncancelled run's count).
  long lp_pivots = 0;
  /// Service-wide completion order (1-based): result A was produced before
  /// result B iff A.sequence < B.sequence. Makes priority overtaking and
  /// drop ordering observable without timing assumptions.
  std::uint64_t sequence = 0;
  /// Pipeline attempts this ticket consumed (1 = first try succeeded; a
  /// watchdog requeue also counts as an attempt).
  int attempts = 1;
  /// True when the successful attempt ran past rung 2 of the RetryPolicy
  /// chain — i.e. the result was produced without warm-start state (and
  /// possibly with conservative solver settings). The bound is still
  /// bit-identical to a fault-free run; `degraded` flags the performance
  /// regime, not the answer.
  bool degraded = false;
};

/// Health snapshot of one pool worker, derived from the per-job heartbeat
/// registry the stall watchdog also reads.
struct WorkerHealth {
  std::size_t worker = 0;  ///< pool worker index
  bool busy = false;       ///< a job is running on this worker right now
  std::uint64_t ticket = 0;  ///< the running job's ticket (0 when idle)
  /// Seconds since the running job's pivot heartbeat last advanced (0 when
  /// idle). The watchdog interrupts the job once this passes
  /// stall_timeout_seconds.
  double seconds_since_heartbeat = 0.0;
  std::size_t completed = 0;  ///< jobs this worker has finished
};

/// Per-client_tag slice of the service counters — the tenant view the
/// shard pong carries (met/missed deadline counts are what the --fairness
/// bench gates per tenant).
struct ClientTagStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;        ///< includes failed
  std::size_t ok = 0;               ///< completed with status.ok()
  std::size_t met_deadline = 0;     ///< ok completions that carried a deadline
  std::size_t missed_deadline = 0;  ///< completed kDeadlineExceeded
  std::size_t rejected = 0;         ///< completed kRejected
  std::size_t cancelled = 0;        ///< completed kCancelled
};

/// Monotonic counters since construction, plus the live cache snapshot.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< includes failed
  std::size_t failed = 0;     ///< completed with !status.ok() (includes the
                              ///< rejected/cancelled/expired below)
  std::size_t pending = 0;    ///< submitted, result not yet produced
  std::size_t rejected = 0;   ///< completed kRejected by the AdmissionPolicy
  std::size_t cancelled = 0;  ///< completed kCancelled
  std::size_t expired = 0;    ///< completed kDeadlineExceeded
  /// High-water mark of `pending` — under an AdmissionPolicy with
  /// max_pending = N this never exceeds N (the bounded-queue evidence the
  /// --overload bench records).
  std::size_t max_pending_seen = 0;
  std::size_t groups_seen = 0;     ///< distinct LP structures ever admitted
  std::size_t steals = 0;          ///< sub-slices taken while another runner held the group
  std::size_t retries = 0;         ///< extra pipeline attempts (RetryPolicy rungs walked)
  std::size_t requeues = 0;        ///< jobs put back on the queue (stalls + worker failures)
  std::size_t stalls = 0;          ///< watchdog stall-detector firings
  std::size_t worker_restarts = 0; ///< runner replacements after an escaped worker exception
  std::size_t swept = 0;           ///< expired/cancelled jobs removed by a queue sweep
                                   ///< (admission pressure or watchdog tick) instead of
                                   ///< waiting for dequeue
  std::size_t policy_sheds = 0;    ///< deadline requests the dispatch policy shed at
                                   ///< admission (predicted miss; completed kDeadlineExceeded)
  /// Per-worker health, one entry per pool worker (see WorkerHealth).
  /// Quarantined cache entries are reported in `cache.quarantined`.
  std::vector<WorkerHealth> workers;
  /// Queued (not yet running) jobs per live structure group; groups with no
  /// queued work and no active runner are absent.
  std::unordered_map<std::uint64_t, std::size_t> queue_depth;
  /// Per-client_tag breakdown (every tag ever submitted, "" included).
  std::map<std::string, ClientTagStats> per_tag;
  /// Completed-solve cost history per structure group — the model the EDF
  /// policies predict backlog wait from (core/policy.hpp).
  std::unordered_map<std::uint64_t, GroupCostHistory> group_history;
  WarmStartCache::Stats cache;     ///< lookups/hits/stores/evictions
  std::size_t cache_entries = 0;   ///< current size of the shared cache
};

class SchedulerService {
 public:
  /// Opaque id for one submitted request. Tickets are issued in submission
  /// order (strictly increasing) and are single-consumption: the first
  /// try_get/wait that returns the result retires the ticket (later claims
  /// report kAlreadyClaimed; an id never issued reports kUnknownTicket).
  using Ticket = std::uint64_t;

  explicit SchedulerService(ServiceOptions options = {});
  /// Drains outstanding work, then joins the workers. Unclaimed results are
  /// discarded.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Admits one request and returns without waiting for the solve.
  /// Validation, the deadline-at-admission check and the AdmissionPolicy
  /// all run here; a request that fails any of them completes its ticket
  /// immediately (kInvalidInstance / kAssumptionViolation /
  /// kDeadlineExceeded / kRejected). Thread-safe; the instance is owned by
  /// the service from here. The returned handle must not outlive the
  /// service.
  TicketHandle submit(ScheduleRequest request);

  /// Legacy conveniences: wrap the instance in a default-priority,
  /// no-deadline ScheduleRequest.
  Ticket submit(model::Instance instance);
  Ticket submit(model::Instance instance, const SchedulerOptions& options);

  /// submit() per element, preserving order; tickets[i] belongs to
  /// instances[i]. Every element is wrapped in a default-priority,
  /// no-deadline request with the given (or the service's) options.
  std::vector<Ticket> submit_many(std::vector<model::Instance> instances);
  std::vector<Ticket> submit_many(std::vector<model::Instance> instances,
                                  const SchedulerOptions& options);

  /// Starts a recurring series: request.base is submitted `occurrences`
  /// times, one immediately and one every `period_seconds` after (each
  /// through the full submit() path — admission, tracing, policy spec).
  /// The returned handle collects the per-occurrence TicketHandles as they
  /// are issued; it must not outlive the service. Destroying the service
  /// stops the series. Thread-safe.
  PeriodicHandle submit_periodic(PeriodicRequest request);

  /// Requests cooperative cancellation of a live ticket. A queued job is
  /// dropped at dequeue; a running job aborts between LP pivots; a cancel
  /// that lands after the last pivot poll is still honoured when the job
  /// completes. Returns true when the ticket was still pending — in which
  /// case its result is guaranteed NOT to be ok: normally kCancelled (or
  /// kDeadlineExceeded if its deadline fired first), though a solver
  /// failure that raced the cancel still reports its own error rather
  /// than being masked. Returns false when the ticket had already
  /// completed, been claimed, or was never issued. Completion is
  /// asynchronous: claim the ticket as usual to observe the result.
  bool cancel(Ticket ticket);

  /// Non-blocking: the result if the ticket has completed (retiring it),
  /// nullopt while it is still pending, kAlreadyClaimed for a ticket whose
  /// result was already consumed and kUnknownTicket for one never issued.
  std::optional<ServiceResult> try_get(Ticket ticket);

  /// Blocks until the ticket completes and returns its result (retiring
  /// it); kAlreadyClaimed / kUnknownTicket return immediately. While
  /// waiting the calling thread helps execute queued pool work
  /// (ThreadPool::try_run_pending_task) instead of sleeping.
  ServiceResult wait(Ticket ticket);

  /// Blocks until every ticket submitted BEFORE this call has produced its
  /// result (the results stay claimable afterwards); submissions racing in
  /// from other threads are not waited for, so a drain under continuous
  /// traffic still returns. Also helps execute.
  void drain();

  ServiceStats stats() const;
  std::size_t num_workers() const { return pool_.size(); }

  /// Snapshots the shared warm-start cache (see WarmStartCache::save). Call
  /// quiesced — after drain() — so the snapshot is a consistent cut; this is
  /// what a shard writes on orderly shutdown so its replacement rejoins hot.
  Status save_warm_cache(std::ostream& os) const;
  /// Restores a snapshot into the shared cache (WarmStartCache::load). Call
  /// before submitting work; a freshly restored service then warm-starts
  /// exactly as the process that wrote the snapshot would have.
  Status load_warm_cache(std::istream& is);

 private:
  struct Job {
    Ticket ticket = 0;
    model::Instance instance;
    SchedulerOptions options;
    int priority = 0;
    std::string client_tag;
    /// Shared with controls_ so cancel()/deadline reach the job wherever it
    /// is: queued (checked at dequeue) or running (polled by the LP pivot
    /// loops via options.lp.simplex.control).
    std::shared_ptr<lp::SolveControl> control;
    /// Next attempt number (1-based); survives watchdog/worker-failure
    /// requeues so a bouncing job still exhausts its RetryPolicy budget.
    int attempt = 1;
  };
  struct Group {
    /// Priority buckets, highest first; FIFO within a bucket. Default-
    /// priority traffic lives in one bucket, i.e. plain FIFO.
    std::map<int, std::deque<Job>, std::greater<int>> buckets;
    std::size_t pending = 0;  ///< total queued jobs across buckets
    std::size_t runners = 0;
    /// Sticky per-group dispatch override, installed by the first request
    /// whose policy spec names a dispatch different from the group's
    /// current one. nullptr = the service default (policy_).
    std::unique_ptr<DispatchPolicy> policy;
  };
  struct PeriodicSeries {
    ScheduleRequest base;
    double period_seconds = 0.0;
    int remaining = 0;
    std::chrono::steady_clock::time_point next_due{};
    std::shared_ptr<PeriodicState> state;
  };

  std::size_t runner_cap() const;
  /// Pre-admission validation -> typed Status (ok = admit).
  Status admission_status(const model::Instance& instance) const;
  /// Requires mutex_ held: counters (service-wide and per-client_tag) +
  /// completion sequence stamp for a result that is about to be published.
  /// `had_deadline` marks a deadline-armed job (counts met_deadline on ok).
  void record_completion_locked(ServiceResult& result, bool had_deadline);
  /// Requires mutex_ held: the typed error for a ticket that is neither
  /// pending nor claimable.
  ServiceResult missing_result_locked(Ticket ticket) const;
  /// Requires mutex_ held: the group's dispatch override or the service
  /// default. Never nullptr.
  DispatchPolicy* effective_policy_locked(const Group* group) const;
  /// Requires mutex_ held: projects a queued job for policy inspection.
  QueuedJobView queued_view(const Job& job) const;
  /// Requires mutex_ held: removes every queued job whose control already
  /// fired (deadline/cancel), completing each kDeadlineExceeded/kCancelled
  /// without a solve — so dead weight stops consuming the AdmissionPolicy
  /// budget (the PR-10 bugfix). Runs at admission pressure and on the
  /// watchdog tick. Returns the number swept; callers notify cv_ when > 0.
  std::size_t sweep_expired_locked();
  /// Requires mutex_ held: dispatches one more runner for `group` when its
  /// backlog warrants it and the cap allows.
  void maybe_dispatch(std::uint64_t key, Group& group);
  /// Requires mutex_ held: pops the front job of the highest non-empty
  /// priority bucket.
  Job pop_job_locked(Group& group);
  /// Runner body: drains `key`'s queue in sub-slices until it is empty.
  /// Every exit path completes (or requeues) the jobs it holds: an escaped
  /// exception routes through handle_worker_failure instead of orphaning
  /// the in-flight tickets.
  void run_group(std::uint64_t key);
  /// Runs one job through the RetryPolicy chain. Returns nullopt when the
  /// job was requeued (watchdog stall with attempts left) — the caller must
  /// NOT complete the ticket then.
  std::optional<ServiceResult> run_job(Job& job, std::uint64_t key);
  /// One pipeline attempt with the degradation rung for `attempt` applied.
  ServiceResult run_attempt(Job& job, std::uint64_t key, int attempt);
  /// Evicts the job's possible cache fingerprints (fine/coarse direct +
  /// probe) — rung 3 of the chain. Thread-safe via the cache's own lock.
  void quarantine_job_entries(const Job& job);
  /// Scope-guarded cleanup of a runner that lost an exception: requeues the
  /// unfinished slice jobs (or fails them when their retry budget is gone),
  /// counts a worker restart and dispatches a replacement runner.
  void handle_worker_failure(std::uint64_t key, std::vector<Job>& slice,
                             std::size_t next, const std::string& what);
  /// Interruptible, deadline-charged wait between attempts. Returns the
  /// control's reason when cancel/deadline fired mid-backoff (the caller
  /// completes the ticket with it), kNone after a full sleep.
  lp::SolveControl::Reason backoff_wait(const Job& job, double seconds) const;
  void watchdog_loop();
  void periodic_loop();
  void complete(Ticket ticket, ServiceResult result);
  /// Requires mutex_ held: the body of complete() — also the publication
  /// path of sweep_expired_locked, which already holds the lock.
  void complete_locked(Ticket ticket, ServiceResult result);

  ServiceOptions options_;
  WarmStartCache cache_;
  /// Service-default dispatch policy (PolicyRegistry, options_.dispatch_policy).
  std::unique_ptr<DispatchPolicy> policy_;
  PolicyParams policy_params_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Ticket next_ticket_ = 1;
  std::unordered_map<std::uint64_t, Group> groups_;   ///< only groups with work
  std::unordered_set<std::uint64_t> groups_seen_;
  std::unordered_set<Ticket> inflight_;
  /// Interruption tokens of pending (queued or running) tickets.
  std::unordered_map<Ticket, std::shared_ptr<lp::SolveControl>> controls_;
  /// Trace-record index of each pending ticket (only populated when
  /// options_.trace is set); complete() routes the outcome through it.
  std::unordered_map<Ticket, std::size_t> trace_index_;
  std::unordered_map<Ticket, ServiceResult> done_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t rejected_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t expired_ = 0;
  std::size_t max_pending_seen_ = 0;
  std::size_t steals_ = 0;
  std::size_t retries_ = 0;
  std::size_t requeues_ = 0;
  std::size_t stalls_ = 0;
  std::size_t worker_restarts_ = 0;
  std::size_t swept_ = 0;
  std::size_t policy_sheds_ = 0;
  std::uint64_t sequence_ = 0;
  /// Per-client_tag counters (ClientTagStats in stats()).
  std::map<std::string, ClientTagStats> tag_stats_;
  /// Completed-solve cost per structure group, fed to policy shedding.
  std::unordered_map<std::uint64_t, GroupCostHistory> group_history_;

  /// Heartbeat registry of RUNNING jobs, keyed by ticket. Written by the
  /// runner on attempt entry/exit, sampled by the watchdog and stats().
  struct RunningJob {
    std::shared_ptr<lp::SolveControl> control;
    int worker = -1;  ///< pool worker index; -1 = a helping external thread
    long last_pivots = 0;
    std::chrono::steady_clock::time_point last_progress;
  };
  std::unordered_map<Ticket, RunningJob> running_;
  /// Tickets the watchdog interrupted (distinguishes a stall-cancel from a
  /// user cancel when the pivot loop reports kInterrupted/kCancelled).
  std::unordered_set<Ticket> stalled_;
  /// Tickets cancelled through cancel() — the authoritative record, since a
  /// stall requeue swaps the control token and would lose a raced cancel
  /// flag otherwise.
  std::unordered_set<Ticket> user_cancelled_;
  /// Per-pool-worker completion counts for WorkerHealth.
  std::vector<std::size_t> worker_completed_;

  /// Stall watchdog (only started when stall_timeout_seconds > 0); stopped
  /// and joined by the destructor before the pool shuts down.
  bool watchdog_stop_ = false;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;

  /// Periodic-series machinery (submit_periodic). The release thread is
  /// started lazily by the first series and joined by the destructor before
  /// drain(), so no occurrence can race the shutdown. Guarded by
  /// periodic_mutex_, never taken while holding mutex_ (the release thread
  /// takes mutex_ through submit() only after dropping periodic_mutex_).
  std::mutex periodic_mutex_;
  std::condition_variable periodic_cv_;
  std::uint64_t periodic_gen_ = 0;  ///< bumped per submit_periodic to re-arm waits
  bool periodic_stop_ = false;
  std::vector<PeriodicSeries> periodic_;
  std::thread periodic_thread_;

  /// Last member: destroyed (joined) first, while the state above is alive.
  support::ThreadPool pool_;
};

/// Value handle pairing a Ticket with the service that issued it — the
/// response side of the request/response contract. Copyable and cheap; it
/// does not own the service and must not outlive it. Tickets are
/// single-consumption: the first try_get()/wait() that returns the result
/// retires the ticket, after which further claims report kAlreadyClaimed.
class TicketHandle {
 public:
  TicketHandle() = default;

  SchedulerService::Ticket id() const { return ticket_; }
  bool valid() const { return service_ != nullptr && ticket_ != 0; }

  /// See SchedulerService::cancel.
  bool cancel() { return valid() && service_->cancel(ticket_); }
  /// See SchedulerService::try_get / wait. On a default-constructed handle
  /// both report kUnknownTicket.
  std::optional<ServiceResult> try_get() {
    if (!valid()) return unbound();
    return service_->try_get(ticket_);
  }
  ServiceResult wait() {
    if (!valid()) return unbound();
    return service_->wait(ticket_);
  }

 private:
  friend class SchedulerService;
  TicketHandle(SchedulerService* service, SchedulerService::Ticket ticket)
      : service_(service), ticket_(ticket) {}

  static ServiceResult unbound() {
    ServiceResult result;
    result.status = Status::error(StatusCode::kUnknownTicket,
                                  "handle is not bound to a service");
    return result;
  }

  SchedulerService* service_ = nullptr;
  SchedulerService::Ticket ticket_ = 0;
};

/// Shared state of one periodic series (internal to SchedulerService /
/// PeriodicHandle; defined here so the handle stays a value type).
struct PeriodicState {
  std::mutex m;
  std::condition_variable cv;
  std::vector<TicketHandle> tickets;  ///< one per released occurrence, in order
  bool done = false;       ///< every occurrence released (or the series cancelled)
  bool cancelled = false;  ///< cancel() called; no further occurrences release
};

/// Value handle for one submit_periodic series. Copyable and cheap; it does
/// not own the service and must not outlive it.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  bool valid() const { return state_ != nullptr; }
  /// TicketHandles of the occurrences released so far, in release order.
  std::vector<TicketHandle> tickets() const;
  /// True once every occurrence has been released (or the series was
  /// cancelled / the service shut down).
  bool done() const;
  /// Stops future occurrences and marks the series done immediately.
  /// Already-released occurrences are unaffected (cancel their TicketHandles
  /// individually). An occurrence racing the call may still be released; it
  /// shows up in tickets() as usual.
  void cancel();
  /// Blocks until done() — i.e. until the series has released everything it
  /// ever will. Does NOT wait for the solves; wait_all() does.
  void wait_submitted();
  /// wait_submitted(), then waits every released ticket and returns the
  /// results in release order.
  std::vector<ServiceResult> wait_all();

 private:
  friend class SchedulerService;
  explicit PeriodicHandle(std::shared_ptr<PeriodicState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<PeriodicState> state_;
};

}  // namespace malsched::core
