// The rounding step of Phase 1 (Section 3.1).
//
// Given the fractional processing times x*_j and the parameter rho in [0,1],
// each x*_j inside a bracket (p_j(l+1), p_j(l)) is compared to the critical
// time p_j(l_c) = rho p_j(l) + (1-rho) p_j(l+1): at or above it the task is
// rounded UP to processing time p_j(l) (fewer processors), below it DOWN to
// p_j(l+1) (more processors). Lemma 4.2 bounds the damage: durations stretch
// by at most 2/(1+rho) and works by at most 2/(2-rho).
#pragma once

#include "core/allotment.hpp"
#include "model/instance.hpp"

namespace malsched::core {

/// Rounds the fractional solution to the integral allotment alpha'.
Allotment round_fractional(const model::Instance& instance,
                           const std::vector<double>& fractional_times, double rho);

}  // namespace malsched::core
