// The rounding step of Phase 1 (Section 3.1).
//
// Given the fractional processing times x*_j and the parameter rho in [0,1],
// each x*_j inside a bracket (p_j(l+1), p_j(l)) is compared to the critical
// time p_j(l_c) = rho p_j(l) + (1-rho) p_j(l+1): at or above it the task is
// rounded UP to processing time p_j(l) (fewer processors), below it DOWN to
// p_j(l+1) (more processors). Lemma 4.2 bounds the damage: durations stretch
// by at most 2/(1+rho) and works by at most 2/(2-rho).
//
// The threshold rule is one point in a family. Always rounding up is the
// rho = 0 specialization (every in-bracket x sits at or above the critical
// time p(l+1)), always rounding down is rho = 1 (every in-bracket x sits
// strictly below p(l)) — so the variants inherit Lemma 4.2 with the
// effective rho, and analysis::ratio_bound stays a valid certificate when
// evaluated at effective_rho(rule, rho). The variants are registered by
// name in core::PolicyRegistry ("threshold" / "up" / "down") and selectable
// per ScheduleRequest via the policy spec (`round=<name>`).
#pragma once

#include "core/allotment.hpp"
#include "model/instance.hpp"

namespace malsched::core {

/// How an in-bracket fractional time picks its side of the bracket.
enum class RoundingRule {
  kThreshold = 0,  ///< the paper's rho-threshold rule (default)
  kUp = 1,         ///< always round the time up — fewer processors, less work
  kDown = 2,       ///< always round the time down — more processors, shorter
};

const char* to_string(RoundingRule rule);

/// The rho whose threshold rule reproduces `rule` exactly: the requested rho
/// for kThreshold, 0 for kUp, 1 for kDown. Feed it to analysis::ratio_bound
/// so the guarantee matches the rounding actually performed.
double effective_rho(RoundingRule rule, double rho);

/// Rounds the fractional solution to the integral allotment alpha'.
Allotment round_fractional(const model::Instance& instance,
                           const std::vector<double>& fractional_times, double rho);

/// Variant-selecting overload: kThreshold reproduces the two-argument form
/// bit-for-bit; kUp/kDown apply the rho = 0 / rho = 1 specializations.
Allotment round_fractional(const model::Instance& instance,
                           const std::vector<double>& fractional_times, double rho,
                           RoundingRule rule);

}  // namespace malsched::core
