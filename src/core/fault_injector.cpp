#include "core/fault_injector.hpp"

namespace malsched::core {

namespace {

/// splitmix64: a fixed 64-bit mixer. Deterministic across hosts, so a
/// probability schedule makes the same per-hit decisions everywhere.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t FaultSite::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t FaultSite::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fires_;
}

bool FaultSite::fire_armed() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check under the lock: a disarm may have landed after the fast path.
  if (!armed_.load(std::memory_order_relaxed)) return false;
  const std::uint64_t hit = ++hits_;
  if (schedule_.max_fires != 0 && fires_ >= schedule_.max_fires) return false;
  bool fire = false;
  switch (schedule_.kind) {
    case FaultSchedule::Kind::kOneShot:
      fire = hit == schedule_.nth && fires_ == 0;
      break;
    case FaultSchedule::Kind::kEveryNth:
      fire = schedule_.nth != 0 && hit % schedule_.nth == 0;
      break;
    case FaultSchedule::Kind::kProbability: {
      // Map the hit index through the seeded mixer onto [0, 1).
      const double u =
          static_cast<double>(mix64(schedule_.seed ^ (hit * 0x9e3779b97f4a7c15ULL)) >> 11) *
          (1.0 / 9007199254740992.0);  // 2^-53
      fire = u < schedule_.probability;
      break;
    }
  }
  if (fire) ++fires_;
  return fire;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector();  // never destroyed
  return *injector;
}

FaultInjector::FaultInjector() {
  for (const char* name : known_sites()) site_impl(name);
}

const std::vector<const char*>& FaultInjector::known_sites() {
  static const std::vector<const char*> kSites = {
      "linalg.lu.factor-fail",     "lp.simplex.eta-corrupt",
      "core.lp.solver-error",      "core.cache.corrupt",
      "core.service.worker-throw", "core.service.worker-stall",
  };
  return kSites;
}

FaultSite& FaultInjector::site(const char* name) {
  return instance().site_impl(name);
}

FaultSite& FaultInjector::site_impl(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (FaultSite* site : sites_) {
    if (site->name() == name) return *site;
  }
  sites_.push_back(new FaultSite(name));  // leaked: references stay valid
  return *sites_.back();
}

void FaultInjector::arm(const std::string& name, FaultSchedule schedule) {
  FaultSite& site = site_impl(name);
  std::lock_guard<std::mutex> lock(site.mutex_);
  site.schedule_ = schedule;
  site.hits_ = 0;
  site.fires_ = 0;
  site.armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& name) {
  FaultSite& site = site_impl(name);
  std::lock_guard<std::mutex> lock(site.mutex_);
  site.armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::vector<FaultSite*> sites;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sites = sites_;
  }
  for (FaultSite* site : sites) {
    std::lock_guard<std::mutex> lock(site->mutex_);
    site->armed_.store(false, std::memory_order_relaxed);
    site->hits_ = 0;
    site->fires_ = 0;
  }
}

bool FaultInjector::any_armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FaultSite* site : sites_) {
    if (site->armed_.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

std::uint64_t FaultInjector::hits(const std::string& name) const {
  return const_cast<FaultInjector*>(this)->site_impl(name).hits();
}

std::uint64_t FaultInjector::fired(const std::string& name) const {
  return const_cast<FaultInjector*>(this)->site_impl(name).fired();
}

}  // namespace malsched::core
