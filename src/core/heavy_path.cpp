#include "core/heavy_path.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace malsched::core {

namespace {

/// T1/T2 intervals (at most m - mu busy), oldest first.
std::vector<UsageInterval> light_slots(const model::Instance& instance,
                                       const Schedule& schedule, int mu) {
  std::vector<UsageInterval> slots;
  for (const UsageInterval& interval : usage_profile(instance, schedule)) {
    if (interval.busy <= instance.m - mu) slots.push_back(interval);
  }
  return slots;
}

}  // namespace

std::vector<int> heavy_path(const model::Instance& instance, const Schedule& schedule,
                            int mu) {
  const int n = instance.num_tasks();
  if (n == 0) return {};
  const auto slots = light_slots(instance, schedule, mu);

  // Last path task: any task completing at the makespan.
  int current = 0;
  double cmax = schedule.completion(instance, 0);
  for (int j = 1; j < n; ++j) {
    const double c = schedule.completion(instance, j);
    if (c > cmax) {
      cmax = c;
      current = j;
    }
  }

  std::vector<int> path{current};
  for (;;) {
    const double tau = schedule.start[static_cast<std::size_t>(current)];
    // Latest light slot strictly before tau.
    const UsageInterval* slot = nullptr;
    for (const UsageInterval& candidate : slots) {
      if (candidate.begin < tau - 1e-12) slot = &candidate;
    }
    if (slot == nullptr) break;  // current starts before every light slot
    // Sample instant inside the part of the slot before tau.
    const double hi = std::min(slot->end, tau);
    const double sample = slot->begin + 0.5 * (hi - slot->begin);
    int next = -1;
    int fallback = -1;
    double latest_completion = -1.0;
    for (graph::NodeId p : instance.dag.predecessors(current)) {
      const auto pu = static_cast<std::size_t>(p);
      const double s = schedule.start[pu];
      const double c = schedule.completion(instance, p);
      if (s <= sample + 1e-12 && sample < c - 1e-12) {
        next = p;  // predecessor running during the slot (Lemma 4.3 case)
        break;
      }
      if (c > latest_completion) {
        latest_completion = c;
        fallback = p;
      }
    }
    if (next == -1) next = fallback;  // defensive: non-LIST schedules
    if (next == -1) break;            // no predecessors: current is a source
    path.push_back(next);
    current = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool heavy_path_covers_light_slots(const model::Instance& instance,
                                   const Schedule& schedule, int mu,
                                   const std::vector<int>& path) {
  for (const UsageInterval& slot : light_slots(instance, schedule, mu)) {
    bool covered = false;
    for (int j : path) {
      const auto ju = static_cast<std::size_t>(j);
      if (schedule.start[ju] <= slot.begin + 1e-9 &&
          schedule.completion(instance, j) >= slot.end - 1e-9) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace malsched::core
