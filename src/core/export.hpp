// Schedule exporters: CSV for spreadsheets/scripts and Chrome tracing JSON
// (load in chrome://tracing or Perfetto) for visual inspection of the
// processor-time layout.
#pragma once

#include <iosfwd>

#include "core/schedule.hpp"
#include "model/instance.hpp"

namespace malsched::core {

/// One row per task: id,name,processors,start,finish,duration.
void write_schedule_csv(std::ostream& os, const model::Instance& instance,
                        const Schedule& schedule);

/// Chrome tracing "X" (complete) events, one lane per processor slot the
/// task occupies (tid = lowest processor index assigned by a greedy lane
/// packing; purely cosmetic — the model has anonymous processors).
void write_schedule_trace_json(std::ostream& os, const model::Instance& instance,
                               const Schedule& schedule);

}  // namespace malsched::core
