// Schedule exporters: CSV for spreadsheets/scripts, Chrome tracing JSON
// (load in chrome://tracing or Perfetto), self-contained SVG Gantt charts
// for docs/CI artifacts, and a styled DOT rendering of the scheduled DAG.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "model/instance.hpp"

namespace malsched::core {

struct Trace;  // core/trace.hpp

/// One row per task: id,name,processors,start,finish,duration.
void write_schedule_csv(std::ostream& os, const model::Instance& instance,
                        const Schedule& schedule);

/// Chrome tracing "X" (complete) events, one lane per processor slot the
/// task occupies (tid = lowest processor index assigned by a greedy lane
/// packing; purely cosmetic — the model has anonymous processors).
void write_schedule_trace_json(std::ostream& os, const model::Instance& instance,
                               const Schedule& schedule);

/// Greedy lane assignment shared by the visual exporters: processors are
/// anonymous in the model, so each task's l_j slots are packed into the
/// lowest-indexed lanes free over its execution interval. Returns one lane
/// list per task; a feasible schedule always fits within m lanes.
std::vector<std::vector<int>> pack_schedule_lanes(const model::Instance& instance,
                                                  const Schedule& schedule);

/// Per-machine Gantt chart as a standalone SVG: one horizontal band per
/// processor lane, one colored block per (task, lane) over the task's
/// execution interval, with a time axis and the task name on its first
/// lane. Renders anywhere a browser does — the committed docs/CI artifact.
void write_schedule_gantt_svg(std::ostream& os, const model::Instance& instance,
                              const Schedule& schedule,
                              const std::string& title = "");

/// Per-request service timeline of a recorded trace as a standalone SVG:
/// one row per record in arrival order, a bar from arrival to completion
/// (arrival offset + recorded wall time), colored by outcome — ok green
/// (degraded amber), cancelled grey, deadline-exceeded red, rejected brown.
/// Rows are labeled with the record index and client_tag; each bar carries
/// a tooltip with the status, pivots and group fingerprint.
void write_trace_timeline_svg(std::ostream& os, const Trace& trace,
                              const std::string& title = "");

/// The precedence DAG with schedule annotations: each node is labeled
/// "name | l=<allotment> | [start, finish)" and filled on a cool-to-warm
/// gradient by start time, so the critical chain's progression is visible
/// at a glance in any DOT viewer.
void write_schedule_dot(std::ostream& os, const model::Instance& instance,
                        const Schedule& schedule);

}  // namespace malsched::core
