#include "core/shard_server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>

#include "core/shard_protocol.hpp"

namespace malsched::core {

namespace {

/// Drains the self-pipe so a burst of wake-ups collapses into one.
void drain_pipe(int fd) {
  char buffer[64];
  while (::read(fd, buffer, sizeof(buffer)) > 0) {
  }
}

}  // namespace

ShardServer::ShardServer(net::Listener listener, ShardServerOptions options)
    : listener_(std::move(listener)),
      options_(std::move(options)),
      service_(options_.service) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    wake_read_fd_ = fds[0];
    wake_write_fd_ = fds[1];
  }
  restore_cache();
}

ShardServer::~ShardServer() {
  if (thread_.joinable()) {
    terminate();
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void ShardServer::restore_cache() {
  if (options_.cache_path.empty()) return;
  std::ifstream is(options_.cache_path, std::ios::binary);
  if (!is) return;  // no snapshot yet — a cold first boot, not an error
  service_.load_warm_cache(is);
}

void ShardServer::save_cache() {
  if (options_.cache_path.empty()) return;
  std::ofstream os(options_.cache_path, std::ios::binary | std::ios::trunc);
  if (!os) return;
  service_.save_warm_cache(os);
}

void ShardServer::start() {
  thread_ = std::thread([this] { serve(); });
}

void ShardServer::stop() {
  stop_requested_.store(true);
  if (wake_write_fd_ >= 0) {
    const char byte = 's';
    [[maybe_unused]] const long n = ::write(wake_write_fd_, &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
}

void ShardServer::terminate() {
  terminate_requested_.store(true);
  stop_requested_.store(true);
  if (wake_write_fd_ >= 0) {
    const char byte = 't';
    [[maybe_unused]] const long n = ::write(wake_write_fd_, &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
}

void ShardServer::serve() {
  std::vector<pollfd> fds;
  std::string chunk(64 * 1024, '\0');
  for (;;) {
    if (terminate_requested_.load()) {
      // Simulated SIGKILL: every peer sees the stream die mid-whatever.
      for (auto& conn : connections_) conn->socket.close();
      connections_.clear();
      listener_.close();
      return;
    }
    if (stop_requested_.load()) {
      service_.drain();
      sweep_results();
      save_cache();
      for (auto& conn : connections_) conn->socket.close();
      connections_.clear();
      listener_.close();
      return;
    }

    fds.clear();
    if (wake_read_fd_ >= 0) {
      fds.push_back({wake_read_fd_, POLLIN, 0});
    }
    const std::size_t listener_slot = fds.size();
    if (listener_.valid()) {
      fds.push_back({listener_.fd(), POLLIN, 0});
    }
    const std::size_t conn_base = fds.size();
    bool any_inflight = false;
    for (const auto& conn : connections_) {
      fds.push_back({conn->socket.fd(), POLLIN, 0});
      any_inflight = any_inflight || !conn->inflight.empty();
    }
    // With work in flight, poll is just a pause between result sweeps; idle,
    // it blocks until traffic or a self-pipe wake-up.
    const int timeout_ms = any_inflight ? 2 : 200;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) return;

    if (wake_read_fd_ >= 0 && (fds[0].revents & POLLIN) != 0) {
      drain_pipe(wake_read_fd_);
      continue;  // re-check the stop/terminate flags at the loop top
    }
    if (listener_.valid() &&
        (fds[listener_slot].revents & (POLLIN | POLLERR)) != 0) {
      net::Socket accepted = listener_.accept();
      if (accepted.valid()) {
        auto conn = std::make_unique<Connection>();
        conn->socket = std::move(accepted);
        connections_.push_back(std::move(conn));
      }
    }
    for (std::size_t i = 0; i < connections_.size() && conn_base + i < fds.size();
         ++i) {
      Connection& conn = *connections_[i];
      const short revents = fds[conn_base + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool would_block = false;
      const long n =
          conn.socket.read_some(chunk.data(), chunk.size(), &would_block);
      if (n > 0) {
        conn.reader.feed(chunk.data(), static_cast<std::size_t>(n));
        if (!drain_frames(conn)) drop_connection(conn);
      } else if (n == 0 || !would_block) {
        // EOF or a hard socket error: the peer is gone. In-flight work is
        // cancelled — the router re-routes what it still cares about.
        drop_connection(conn);
      }
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& conn) {
                         return conn->dead;
                       }),
        connections_.end());
    sweep_results();
  }
}

bool ShardServer::drain_frames(Connection& conn) {
  std::string payload;
  for (;;) {
    bool frame_ready = false;
    const Status status = conn.reader.next(payload, frame_ready);
    if (!status.ok()) return false;  // framing is unrecoverable — drop
    if (!frame_ready) return true;
    switch (static_cast<ShardMessage>(shard_message_tag(payload))) {
      case ShardMessage::kSubmit: {
        ShardRequest wire;
        if (!decode_shard_request(payload, wire).ok()) return false;
        const std::uint64_t id = wire.id;
        TicketHandle handle = service_.submit(
            to_schedule_request(wire, options_.service.scheduler));
        conn.inflight.emplace(handle.id(), id);
        break;
      }
      case ShardMessage::kPing: {
        ShardPing ping;
        if (!decode_shard_ping(payload, ping).ok()) return false;
        const ServiceStats stats = service_.stats();
        ShardPong pong;
        pong.nonce = ping.nonce;
        pong.pending = stats.pending;
        pong.completed = stats.completed;
        pong.cache_entries = stats.cache_entries;
        pong.lp_pivots_total = pivots_sent_.load();
        pong.tags.reserve(stats.per_tag.size());
        for (const auto& [tag, counters] : stats.per_tag) {
          ShardTagCounters row;
          row.tag = tag;
          row.submitted = counters.submitted;
          row.completed = counters.completed;
          row.met_deadline = counters.met_deadline;
          row.missed_deadline = counters.missed_deadline;
          row.rejected = counters.rejected;
          pong.tags.push_back(std::move(row));
        }
        if (!net::send_frame(conn.socket, encode_shard_pong(pong)).ok()) {
          return false;
        }
        break;
      }
      case ShardMessage::kShutdown: {
        ShardShutdown shutdown;
        if (!decode_shard_shutdown(payload, shutdown).ok()) return false;
        if (!shutdown.save_cache) options_.cache_path.clear();
        stop_requested_.store(true);
        return true;  // the loop top runs the orderly drain/snapshot path
      }
      default:
        return false;  // unknown or peer-direction tag: protocol violation
    }
  }
}

void ShardServer::sweep_results() {
  for (auto& conn_ptr : connections_) {
    Connection& conn = *conn_ptr;
    if (conn.dead) continue;
    for (auto it = conn.inflight.begin(); it != conn.inflight.end();) {
      std::optional<ServiceResult> result = service_.try_get(it->first);
      if (!result.has_value()) {
        ++it;
        continue;
      }
      const ShardResult wire = make_shard_result(it->second, *result);
      if (result->status.ok()) pivots_sent_.fetch_add(result->lp_pivots);
      results_sent_.fetch_add(1);
      if (!net::send_frame(conn.socket, encode_shard_result(wire)).ok()) {
        drop_connection(conn);
        break;
      }
      it = conn.inflight.erase(it);
    }
  }
  connections_.erase(
      std::remove_if(
          connections_.begin(), connections_.end(),
          [](const std::unique_ptr<Connection>& conn) { return conn->dead; }),
      connections_.end());
}

void ShardServer::drop_connection(Connection& conn) {
  for (const auto& [ticket, id] : conn.inflight) {
    service_.cancel(ticket);
  }
  conn.inflight.clear();
  conn.socket.close();
  conn.dead = true;
}

}  // namespace malsched::core
