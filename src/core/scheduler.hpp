// Top-level driver: the complete two-phase Jansen-Zhang approximation
// algorithm for scheduling malleable tasks with precedence constraints.
//
// Pipeline (Section 3):
//   0. pick (rho, mu) from m — analysis::paper_parameters, or overrides;
//   1. solve LP (9) -> fractional times x*, lower bound C*;
//      round with rho -> allotment alpha';
//   2. cap at mu and LIST-schedule -> final feasible schedule.
//
// The result carries the LP lower bound C* (<= OPT by (11)), so
// makespan / C* is an instance-wise certificate of the approximation
// quality; Theorem 4.1 guarantees it never exceeds ratio_bound(m, mu, rho)
// <= 3.291919 when the instance satisfies Assumptions 1 and 2.
#pragma once

#include <optional>

#include "core/allotment_lp.hpp"
#include "core/list_scheduler.hpp"
#include "core/rounding.hpp"
#include "core/schedule.hpp"
#include "model/instance.hpp"

namespace malsched::core {

struct SchedulerOptions {
  /// Rounding parameter; defaults to the paper's rho(m) (0.26 for m >= 5).
  std::optional<double> rho;
  /// Allotment cap; defaults to the paper's mu(m) from eq. (20).
  std::optional<int> mu;
  /// READY-task selection rule of Phase 2 (guarantee-preserving).
  ListPriority priority = ListPriority::kEarliestStart;
  AllotmentLpOptions lp;
};

struct SchedulerResult {
  Schedule schedule;
  Allotment alpha_prime;          ///< Phase-1 allotment (before the mu cap)
  FractionalAllotment fractional; ///< LP solution and lower bound
  double rho = 0.0;
  int mu = 1;
  double makespan = 0.0;
  /// makespan / C*: the measured approximation factor against the LP bound.
  double ratio_vs_lower_bound = 0.0;
  /// ratio_bound(m, mu, rho): the proven worst-case factor for these
  /// parameters.
  double guaranteed_ratio = 0.0;
};

/// Runs the full two-phase algorithm.
SchedulerResult schedule_malleable_dag(const model::Instance& instance,
                                       const SchedulerOptions& options = {});

}  // namespace malsched::core
