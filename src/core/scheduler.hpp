// Top-level driver: the complete two-phase Jansen-Zhang approximation
// algorithm for scheduling malleable tasks with precedence constraints.
//
// Pipeline (Section 3):
//   0. pick (rho, mu) from m — analysis::paper_parameters, or overrides;
//   1. solve LP (9) -> fractional times x*, lower bound C*;
//      round with rho -> allotment alpha';
//   2. cap at mu and LIST-schedule -> final feasible schedule.
//
// The result carries the LP lower bound C* (<= OPT by (11)), so
// makespan / C* is an instance-wise certificate of the approximation
// quality; Theorem 4.1 guarantees it never exceeds ratio_bound(m, mu, rho)
// <= 3.291919 when the instance satisfies Assumptions 1 and 2.
#pragma once

#include <optional>

#include "core/allotment_lp.hpp"
#include "core/list_scheduler.hpp"
#include "core/rounding.hpp"
#include "core/schedule.hpp"
#include "model/instance.hpp"

namespace malsched::core {

/// Self-healing policy for retryable pipeline failures (is_retryable in
/// status.hpp: numeric LP failures and unexpected internal exceptions).
/// SchedulerService walks a fixed degradation chain, one rung per attempt:
///
///   attempt 1  as configured (warm starts, shared cache, tuned solver)
///   attempt 2  identical rerun — a failed attempt never wrote the cache,
///              so this isolates genuinely transient failures
///   attempt 3  quarantine the instance's WarmStartCache entries and solve
///              COLD (no cache, no warm start): a poisoned basis snapshot
///              cannot reach the solver any more
///   attempt 4+ conservative solver settings on top of cold: Dantzig full
///              pricing, refactorize every few pivots, no eta-file growth,
///              no cross-stride refinement, no dual re-optimization — slow
///              but numerically boring. The piece stride is NOT changed:
///              it alters the LP (and therefore the bound), and a recovered
///              result must be bit-identical to a fault-free run.
///
/// Retries charge the request's deadline and respect cancellation: backoff
/// waits poll the same lp::SolveControl as the pivot loops. When every
/// attempt fails the ticket completes with kRetryExhausted carrying the
/// per-attempt trail.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying, 0/negative is
  /// treated as 1. The default walks the whole chain once.
  int max_attempts = 4;
  /// Wait before the second attempt (seconds); 0 retries immediately. The
  /// wait is interruptible and deadline-aware.
  double backoff_seconds = 0.0;
  /// Backoff growth factor per further attempt.
  double backoff_multiplier = 2.0;
  /// Evict the instance's cache entries at the cold rung (attempt 3).
  bool quarantine_cache = true;
  /// Apply the conservative solver settings from attempt 4 on.
  bool degrade_solver = true;
};

struct SchedulerOptions {
  /// Rounding parameter; defaults to the paper's rho(m) (0.26 for m >= 5).
  std::optional<double> rho;
  /// Allotment cap; defaults to the paper's mu(m) from eq. (20).
  std::optional<int> mu;
  /// READY-task selection rule of Phase 2 (guarantee-preserving).
  ListPriority priority = ListPriority::kEarliestStart;
  /// Phase-1 rounding variant (core/rounding.hpp). kThreshold is the
  /// paper's rule; kUp/kDown are its rho = 0 / rho = 1 specializations,
  /// and guaranteed_ratio is evaluated at the matching effective rho.
  RoundingRule rounding = RoundingRule::kThreshold;
  AllotmentLpOptions lp;
  /// Failure recovery chain, honoured by SchedulerService (the synchronous
  /// schedule_malleable_dag ignores it — a direct caller holds the exception
  /// and decides for itself).
  RetryPolicy retry;
};

struct SchedulerResult {
  Schedule schedule;
  Allotment alpha_prime;          ///< Phase-1 allotment (before the mu cap)
  FractionalAllotment fractional; ///< LP solution and lower bound
  double rho = 0.0;
  int mu = 1;
  double makespan = 0.0;
  /// makespan / C*: the measured approximation factor against the LP bound.
  double ratio_vs_lower_bound = 0.0;
  /// ratio_bound(m, mu, rho): the proven worst-case factor for these
  /// parameters.
  double guaranteed_ratio = 0.0;
};

/// Runs the full two-phase algorithm.
SchedulerResult schedule_malleable_dag(const model::Instance& instance,
                                       const SchedulerOptions& options = {});

}  // namespace malsched::core
