// Resource timeline: piecewise-constant processor usage supporting the LIST
// scheduler's "earliest feasible start" queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace malsched::core {

/// Tracks how many processors are busy over time while a schedule is being
/// built. Usage is constant between consecutive breakpoints and zero after
/// the last.
///
/// Breakpoints are kept in time-ordered chunks of bounded size, so inserting
/// a new breakpoint shifts at most one chunk (O(chunk) instead of the
/// O(total segments) memmove of a flat vector) and a full chunk splits in
/// two. Lookups remember the last chunk touched — list scheduling probes
/// mostly march forward in time, so the common case is a hit on the cursor
/// instead of a fresh binary search.
class ResourceTimeline {
 public:
  explicit ResourceTimeline(int capacity);

  int capacity() const { return capacity_; }

  /// Earliest t >= ready such that `procs` processors are free during the
  /// whole window [t, t + duration). duration > 0, 1 <= procs <= capacity.
  double earliest_fit(double ready, double duration, int procs) const;

  /// Reserves `procs` processors during [start, start + duration); asserts
  /// the window indeed fits.
  void place(double start, double duration, int procs);

  /// Current usage at time t (for tests).
  int usage_at(double t) const;

  /// Monotonic revision counter, bumped by every place(). Because usage only
  /// ever grows, an earliest_fit result cached at revision r is a valid
  /// lower bound at any later revision — the LIST scheduler's lazy priority
  /// queue relies on this.
  std::uint64_t revision() const { return revision_; }

  /// Total number of breakpoints (for tests / diagnostics).
  std::size_t segment_count() const;

 private:
  struct Chunk {
    std::vector<double> times;
    std::vector<int> usage;
  };
  /// Position of a breakpoint: chunk index + offset within the chunk.
  struct Pos {
    std::size_t chunk;
    std::size_t offset;
  };

  /// Largest breakpoint <= t (+ epsilon slop); t must be >= times front.
  Pos locate(double t) const;
  /// Advances to the next breakpoint; false at the end of the timeline.
  bool next(Pos& p) const;
  double time_at(Pos p) const { return chunks_[p.chunk].times[p.offset]; }
  int usage_at_pos(Pos p) const { return chunks_[p.chunk].usage[p.offset]; }

  /// Returns the position of a breakpoint exactly at t, inserting one
  /// (copying the enclosing segment's usage) if none exists.
  Pos ensure_breakpoint(double t);
  void split_chunk(std::size_t c);

  int capacity_;
  std::uint64_t revision_ = 0;
  std::vector<Chunk> chunks_;
  mutable std::size_t hint_chunk_ = 0;  // amortized cursor for locate()
};

}  // namespace malsched::core
