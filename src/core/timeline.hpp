// Resource timeline: piecewise-constant processor usage supporting the LIST
// scheduler's "earliest feasible start" queries.
#pragma once

#include <vector>

namespace malsched::core {

/// Tracks how many processors are busy over time while a schedule is being
/// built. Maintains sorted breakpoints; usage is constant between
/// consecutive breakpoints and zero after the last.
class ResourceTimeline {
 public:
  explicit ResourceTimeline(int capacity);

  int capacity() const { return capacity_; }

  /// Earliest t >= ready such that `procs` processors are free during the
  /// whole window [t, t + duration). duration > 0, 1 <= procs <= capacity.
  double earliest_fit(double ready, double duration, int procs) const;

  /// Reserves `procs` processors during [start, start + duration); asserts
  /// the window indeed fits.
  void place(double start, double duration, int procs);

  /// Current usage at time t (for tests).
  int usage_at(double t) const;

 private:
  std::size_t segment_of(double t) const;

  int capacity_;
  std::vector<double> times_;  // breakpoints; times_[0] = 0
  std::vector<int> usage_;     // usage_[k] on [times_[k], times_[k+1]); last = tail
};

}  // namespace malsched::core
