#include "core/timeline.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace malsched::core {

namespace {
constexpr double kTimeEps = 1e-12;
// Chunks split once they reach twice this size, so steady state is chunks of
// roughly kChunkTarget breakpoints: insertions shift at most 2*kChunkTarget
// entries and locate() binary-searches a short chunk directory.
constexpr std::size_t kChunkTarget = 64;
}  // namespace

ResourceTimeline::ResourceTimeline(int capacity) : capacity_(capacity) {
  MALSCHED_ASSERT(capacity >= 1);
  Chunk first;
  first.times.push_back(0.0);
  first.usage.push_back(0);
  chunks_.push_back(std::move(first));
}

std::size_t ResourceTimeline::segment_count() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.times.size();
  return total;
}

ResourceTimeline::Pos ResourceTimeline::locate(double t) const {
  const double key = t + kTimeEps;
  // Cursor fast path: the chunk we touched last still covers t.
  std::size_t c = hint_chunk_;
  if (c >= chunks_.size()) c = chunks_.size() - 1;
  if (chunks_[c].times.front() > key ||
      (c + 1 < chunks_.size() && chunks_[c + 1].times.front() <= key)) {
    // Binary search the chunk directory: last chunk with front <= key.
    std::size_t lo = 0, hi = chunks_.size() - 1;
    if (chunks_.back().times.front() <= key) {
      lo = chunks_.size() - 1;
    } else {
      while (lo + 1 < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (chunks_[mid].times.front() <= key) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    c = lo;
  }
  hint_chunk_ = c;
  const auto& times = chunks_[c].times;
  // Largest k with times[k] <= t + eps.
  const auto it = std::upper_bound(times.begin(), times.end(), key);
  MALSCHED_ASSERT(it != times.begin());
  return Pos{c, static_cast<std::size_t>(it - times.begin()) - 1};
}

bool ResourceTimeline::next(Pos& p) const {
  if (p.offset + 1 < chunks_[p.chunk].times.size()) {
    ++p.offset;
    return true;
  }
  if (p.chunk + 1 < chunks_.size()) {
    ++p.chunk;
    p.offset = 0;
    return true;
  }
  return false;
}

double ResourceTimeline::earliest_fit(double ready, double duration, int procs) const {
  MALSCHED_ASSERT(duration > 0.0);
  MALSCHED_ASSERT(procs >= 1 && procs <= capacity_);
  MALSCHED_ASSERT(ready >= 0.0);

  double candidate = ready;
  for (;;) {
    // Scan segments from `candidate` until the window is covered or blocked.
    Pos p = locate(candidate);
    const double window_end = candidate + duration;
    while (true) {
      if (usage_at_pos(p) + procs > capacity_) break;  // blocked at p
      // Segment p spans [time_at(p), next); does it reach the window end?
      Pos q = p;
      const double seg_end = next(q) ? time_at(q) : window_end;
      if (seg_end >= window_end - kTimeEps) return candidate;
      p = q;
    }
    // Retry at the end of the blocking segment.
    Pos q = p;
    const bool has_next = next(q);
    MALSCHED_ASSERT_MSG(has_next, "tail of the timeline must have zero usage");
    candidate = time_at(q);
  }
}

void ResourceTimeline::split_chunk(std::size_t c) {
  Chunk& full = chunks_[c];
  if (full.times.size() < 2 * kChunkTarget) return;
  const std::size_t half = full.times.size() / 2;
  Chunk upper;
  upper.times.assign(full.times.begin() + static_cast<std::ptrdiff_t>(half),
                     full.times.end());
  upper.usage.assign(full.usage.begin() + static_cast<std::ptrdiff_t>(half),
                     full.usage.end());
  full.times.resize(half);
  full.usage.resize(half);
  chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(c) + 1,
                 std::move(upper));
}

ResourceTimeline::Pos ResourceTimeline::ensure_breakpoint(double t) {
  Pos p = locate(t);
  const double at = time_at(p);
  if (std::abs(at - t) <= kTimeEps) return p;
  MALSCHED_ASSERT(at < t);
  // Insert after p, inheriting the segment's usage.
  Chunk& chunk = chunks_[p.chunk];
  const auto ins = static_cast<std::ptrdiff_t>(p.offset) + 1;
  chunk.times.insert(chunk.times.begin() + ins, t);
  chunk.usage.insert(chunk.usage.begin() + ins,
                     chunk.usage[p.offset]);
  Pos inserted{p.chunk, p.offset + 1};
  if (chunk.times.size() >= 2 * kChunkTarget) {
    const std::size_t half = chunk.times.size() / 2;
    split_chunk(p.chunk);
    if (inserted.offset >= half) {
      inserted.chunk += 1;
      inserted.offset -= half;
    }
  }
  return inserted;
}

void ResourceTimeline::place(double start, double duration, int procs) {
  MALSCHED_ASSERT(duration > 0.0);
  const double end = start + duration;

  // End first: inserting it cannot disturb the start position we walk from.
  ensure_breakpoint(end);
  Pos p = ensure_breakpoint(start);
  // Raise usage on every segment of [start, end).
  while (time_at(p) < end - kTimeEps) {
    chunks_[p.chunk].usage[p.offset] += procs;
    MALSCHED_ASSERT_MSG(chunks_[p.chunk].usage[p.offset] <= capacity_,
                        "timeline capacity exceeded");
    const bool has_next = next(p);
    MALSCHED_ASSERT(has_next);
  }
  ++revision_;
}

int ResourceTimeline::usage_at(double t) const { return usage_at_pos(locate(t)); }

}  // namespace malsched::core
