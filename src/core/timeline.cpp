#include "core/timeline.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace malsched::core {

namespace {
constexpr double kTimeEps = 1e-12;
}

ResourceTimeline::ResourceTimeline(int capacity) : capacity_(capacity) {
  MALSCHED_ASSERT(capacity >= 1);
  times_.push_back(0.0);
  usage_.push_back(0);
}

std::size_t ResourceTimeline::segment_of(double t) const {
  // Largest k with times_[k] <= t.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t + kTimeEps);
  MALSCHED_ASSERT(it != times_.begin());
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

double ResourceTimeline::earliest_fit(double ready, double duration, int procs) const {
  MALSCHED_ASSERT(duration > 0.0);
  MALSCHED_ASSERT(procs >= 1 && procs <= capacity_);
  MALSCHED_ASSERT(ready >= 0.0);

  double candidate = ready;
  for (;;) {
    // Scan segments from `candidate` until the window is covered or blocked.
    std::size_t k = segment_of(candidate);
    const double window_end = candidate + duration;
    bool blocked = false;
    while (true) {
      if (usage_[k] + procs > capacity_) {
        blocked = true;
        break;
      }
      // Segment k spans [times_[k], next); does it reach the window end?
      const double seg_end =
          (k + 1 < times_.size()) ? times_[k + 1] : window_end;
      if (seg_end >= window_end - kTimeEps) break;
      ++k;
    }
    if (!blocked) return candidate;
    // Retry at the end of the blocking segment.
    MALSCHED_ASSERT_MSG(k + 1 < times_.size(),
                        "tail of the timeline must have zero usage");
    candidate = times_[k + 1];
  }
}

void ResourceTimeline::place(double start, double duration, int procs) {
  MALSCHED_ASSERT(duration > 0.0);
  const double end = start + duration;

  auto ensure_breakpoint = [this](double t) {
    const auto it = std::lower_bound(times_.begin(), times_.end(), t - kTimeEps);
    if (it != times_.end() && std::abs(*it - t) <= kTimeEps) {
      return static_cast<std::size_t>(it - times_.begin());
    }
    const std::size_t pos = static_cast<std::size_t>(it - times_.begin());
    MALSCHED_ASSERT(pos > 0);
    times_.insert(times_.begin() + static_cast<std::ptrdiff_t>(pos), t);
    usage_.insert(usage_.begin() + static_cast<std::ptrdiff_t>(pos),
                  usage_[pos - 1]);
    return pos;
  };

  const std::size_t first = ensure_breakpoint(start);
  const std::size_t last = ensure_breakpoint(end);
  for (std::size_t k = first; k < last; ++k) {
    usage_[k] += procs;
    MALSCHED_ASSERT_MSG(usage_[k] <= capacity_, "timeline capacity exceeded");
  }
}

int ResourceTimeline::usage_at(double t) const { return usage_[segment_of(t)]; }

}  // namespace malsched::core
