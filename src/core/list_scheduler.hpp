// Phase 2: the LIST variant of Table 1 of the paper.
//
// Given the Phase-1 allotment alpha' and the cap mu, every task's allotment
// is reduced to l_j = min(l'_j, mu); tasks then start greedily: among the
// READY tasks (all predecessors scheduled), the one with the smallest
// earliest feasible starting time — the first instant at or after its data-
// ready time with l_j processors free for its whole duration — is scheduled
// next, following Graham's list scheduling.
#pragma once

#include "core/allotment.hpp"
#include "core/schedule.hpp"
#include "model/instance.hpp"

namespace malsched::core {

/// Tie-breaking / selection rule among READY tasks. Registered in the
/// PolicyRegistry as "earliest-start" / "critical-path", selectable per
/// request via a `list=` policy spec (core/policy_registry.hpp).
enum class ListPriority {
  /// Paper Table 1: smallest earliest feasible starting time (ties: id).
  kEarliestStart,
  /// Classic HLF/bottom-level rule: among the tasks achieving the smallest
  /// earliest start (within tolerance), prefer the one with the longest
  /// remaining critical path (computed at the capped allotment). The
  /// Lemma 4.3 analysis only needs greediness, so the 3.29 guarantee is
  /// unaffected; E9 measures the empirical difference.
  kCriticalPathFirst,
};

/// Runs LIST; `mu` must satisfy 1 <= mu <= (m+1)/2 (the cap range of the
/// paper's analysis). The returned schedule is always feasible.
Schedule list_schedule(const model::Instance& instance, const Allotment& alpha_prime,
                       int mu, ListPriority priority = ListPriority::kEarliestStart);

}  // namespace malsched::core
