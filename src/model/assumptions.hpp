// Validators for the paper's model assumptions.
//
// Assumption 1 (eq. 1):  p(l) >= p(l') for l <= l'.
// Assumption 2 (eq. 2):  speedup s(l) = p(1)/p(l) concave on {0, 1, ..., m}
//                        with the convention p(0) = infinity, s(0) = 0.
// Assumption 2' (eq. 3): work W(l) = l p(l) non-decreasing (the weaker
//                        assumption of Lepere-Trystram-Woeginger / JZ2006;
//                        Theorem 2.1 shows A2 implies A2').
#pragma once

#include <string>

#include "model/task.hpp"

namespace malsched::model {

struct ValidationReport {
  bool ok = true;
  std::string detail;  ///< first violated inequality, human readable
};

ValidationReport check_assumption1(const MalleableTask& task, double tol = 1e-9);

/// Discrete concavity of the speedup including the s(0) = 0 endpoint:
/// s(l+1) - s(l) <= s(l) - s(l-1) for l = 1..m-1 (with s(0) = 0). For
/// integer arguments this is equivalent to the chord condition (2).
ValidationReport check_assumption2(const MalleableTask& task, double tol = 1e-9);

ValidationReport check_assumption2prime(const MalleableTask& task, double tol = 1e-9);

/// Convexity of the work function in the processing time (the Theorem 2.2
/// consequence): for the breakpoints (p(l), W(l)), every middle point lies
/// on or below the chord of its neighbours.
ValidationReport check_work_convex_in_time(const MalleableTask& task, double tol = 1e-9);

/// True iff both Assumption 1 and Assumption 2 hold.
bool satisfies_paper_model(const MalleableTask& task, double tol = 1e-9);

/// The generalized model of the paper's conclusion: the algorithm and its
/// analysis remain valid whenever Assumption 1 holds and the work function
/// is convex in the processing time — concavity of the speedup (A2) is a
/// sufficient but not necessary condition (Theorems 2.1/2.2). The analysis
/// additionally uses monotone work (A2') when the mu-cap lowers allotments,
/// so the generalized validator checks A1 + A2' + convexity.
bool satisfies_generalized_model(const MalleableTask& task, double tol = 1e-9);

}  // namespace malsched::model
