// Instance serialization: the line-oriented text format plus the binary
// wire layer (length-prefixed frames and a bit-exact instance codec).
//
// Text format (line oriented, '#' comments allowed):
//   malsched-instance v1
//   m <processors>
//   tasks <n>
//   task <id> <name-or-dash> <p(1)> <p(2)> ... <p(m)>     (n lines)
//   edges <k>
//   edge <from> <to>                                       (k lines)
//
// Round-trips exactly (times printed with max precision); used to pin down
// regression workloads and to exchange instances with external tools.
//
// The binary layer is the unit of every on-disk trace and of the future
// sharded service's socket protocol:
//
//   frame  := magic "MF" | u32 payload length | u32 CRC-32 of payload |
//             payload bytes                    (all integers little-endian)
//   instance payload := i32 m | i32 n |
//                       n x (string name | m x f64 processing time) |
//                       u32 k | k x (u32 from | u32 to)
//
// Doubles travel as their raw IEEE-754 bits, so encode -> decode is
// bit-for-bit. Truncated and corrupted frames come back as typed
// core::Status errors (kTruncatedFrame / kCorruptFrame / kMalformedRecord),
// never as a crash — a shard must survive a peer dying mid-frame.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "core/status.hpp"
#include "model/instance.hpp"

namespace malsched::model {

void write_instance(std::ostream& os, const Instance& instance);

/// Returns std::nullopt (with `error` filled when non-null) on malformed
/// input; otherwise the parsed, validated instance.
std::optional<Instance> read_instance(std::istream& is, std::string* error = nullptr);

// ---- Little-endian byte codec primitives ---------------------------------
//
// Shared by the binary instance codec below and the trace record codec in
// core/trace.cpp. Appends write to a growing byte string; reads advance
// `offset` and return false (leaving the output untouched) when the buffer
// ends first, so a decoder can turn truncation into a typed error instead
// of reading past the end.

namespace wire {

inline void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void append_i32(std::string& out, std::int32_t v) {
  append_u32(out, static_cast<std::uint32_t>(v));
}

inline void append_i64(std::string& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

/// Raw IEEE-754 bits: the round trip is bit-for-bit, including -0.0 and NaN
/// payloads.
inline void append_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

inline void append_string(std::string& out, std::string_view s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

inline bool read_u8(std::string_view in, std::size_t& offset, std::uint8_t& v) {
  if (offset + 1 > in.size()) return false;
  v = static_cast<std::uint8_t>(in[offset++]);
  return true;
}

inline bool read_u32(std::string_view in, std::size_t& offset, std::uint32_t& v) {
  if (offset + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[offset + i])) << (8 * i);
  }
  offset += 4;
  return true;
}

inline bool read_u64(std::string_view in, std::size_t& offset, std::uint64_t& v) {
  if (offset + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[offset + i])) << (8 * i);
  }
  offset += 8;
  return true;
}

inline bool read_i32(std::string_view in, std::size_t& offset, std::int32_t& v) {
  std::uint32_t u = 0;
  if (!read_u32(in, offset, u)) return false;
  v = static_cast<std::int32_t>(u);
  return true;
}

inline bool read_i64(std::string_view in, std::size_t& offset, std::int64_t& v) {
  std::uint64_t u = 0;
  if (!read_u64(in, offset, u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

inline bool read_f64(std::string_view in, std::size_t& offset, double& v) {
  std::uint64_t bits = 0;
  if (!read_u64(in, offset, bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

inline bool read_string(std::string_view in, std::size_t& offset, std::string& s) {
  std::uint32_t len = 0;
  if (!read_u32(in, offset, len)) return false;
  if (offset + len > in.size()) return false;
  s.assign(in.data() + offset, len);
  offset += len;
  return true;
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes` — the per-frame checksum.
std::uint32_t crc32(std::string_view bytes);

}  // namespace wire

// ---- Length-prefixed framing ---------------------------------------------

/// Default upper bound a reader accepts for one frame's payload (64 MiB) —
/// the right cap for trace files, whose largest record is a full instance.
/// Readers on an untrusted byte stream should pass a tighter `max_payload`
/// (the shard router's wire cap is net::kWireFramePayload): the length field
/// is screened BEFORE any allocation, so a flipped length byte must not ask
/// for gigabytes no matter the cap.
constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Writes one frame (magic + length + CRC-32 + payload) to `os`.
void write_frame(std::ostream& os, std::string_view payload);

/// Reads one frame into `payload`, accepting payloads up to `max_payload`
/// bytes (per-reader; see kMaxFramePayload). Typed failures: kTruncatedFrame
/// when the stream ends mid-frame (including a clean end-of-stream at a
/// frame boundary — callers that expect N frames read exactly N),
/// kCorruptFrame on bad magic or a CRC mismatch, kMalformedRecord when the
/// length field exceeds `max_payload` — rejected before allocating, so an
/// oversize frame costs the reader nothing.
core::Status read_frame(std::istream& is, std::string& payload,
                        std::uint32_t max_payload = kMaxFramePayload);

// ---- Binary instance codec -----------------------------------------------

/// Appends the instance's binary encoding (see the header comment) to `out`.
void append_instance_binary(std::string& out, const Instance& instance);

/// Decodes one instance starting at `offset` (advanced past it on success).
/// The decoded instance is structurally validated like read_instance — bad
/// edge endpoints, non-positive times and cyclic precedence all come back as
/// kMalformedRecord.
core::Status read_instance_binary(std::string_view in, std::size_t& offset,
                                  Instance& out);

}  // namespace malsched::model
