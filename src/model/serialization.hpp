// Plain-text instance serialization.
//
// Format (line oriented, '#' comments allowed):
//   malsched-instance v1
//   m <processors>
//   tasks <n>
//   task <id> <name-or-dash> <p(1)> <p(2)> ... <p(m)>     (n lines)
//   edges <k>
//   edge <from> <to>                                       (k lines)
//
// Round-trips exactly (times printed with max precision); used to pin down
// regression workloads and to exchange instances with external tools.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/instance.hpp"

namespace malsched::model {

void write_instance(std::ostream& os, const Instance& instance);

/// Returns std::nullopt (with `error` filled when non-null) on malformed
/// input; otherwise the parsed, validated instance.
std::optional<Instance> read_instance(std::istream& is, std::string* error = nullptr);

}  // namespace malsched::model
