// Speedup-curve families for building malleable tasks.
//
// Each factory returns a processing-time table p(1..m) = p1 / s(l) for a
// family of speedup functions s with s(1) = 1. The first four families are
// concave and non-decreasing, hence satisfy Assumptions 1 and 2; the last
// one is the paper's own Section 2 counterexample that satisfies
// Assumptions 1 and 2' but NOT Assumption 2 (convex speedup) — used to test
// the validators and to probe robustness of the algorithm outside its model.
#pragma once

#include <vector>

#include "model/task.hpp"
#include "support/rng.hpp"

namespace malsched::model {

/// Power law p(l) = p1 * l^{-d}, 0 < d <= 1 — the canonical example of the
/// paper (and of Prasanna-Musicus). d = 1 is perfect linear speedup.
MalleableTask make_power_law_task(double p1, double d, int m, std::string name = {});

/// Amdahl's law: s(l) = 1 / ((1 - f) + f / l), serial fraction 1-f.
MalleableTask make_amdahl_task(double p1, double parallel_fraction, int m,
                               std::string name = {});

/// Logarithmic: s(l) = 1 + c * ln(l); concave, slow saturation.
MalleableTask make_logarithmic_task(double p1, double c, int m, std::string name = {});

/// Linear speedup up to a cap: s(l) = min(l, cap) (then flat).
MalleableTask make_capped_linear_task(double p1, int cap, int m, std::string name = {});

/// Fully sequential task: p(l) = p1 for all l.
MalleableTask make_sequential_task(double p1, int m, std::string name = {});

/// The Section 2 counterexample p(l) = p1 / (1 - delta + delta * l^2) with
/// delta in (0, 1/(m^2+1)): work non-decreasing (Assumption 2') but speedup
/// convex (violates Assumption 2).
MalleableTask make_convex_speedup_task(double p1, double delta, int m,
                                       std::string name = {});

/// Random task satisfying Assumptions 1+2: draws a concave non-decreasing
/// speedup by accumulating positive, non-increasing increments with
/// s(1) - s(0) = 1 >= s(2)-s(1) >= ... >= 0 (the discrete concavity chain
/// including the s(0) = 0 endpoint).
MalleableTask make_random_concave_task(support::Rng& rng, double p1_lo, double p1_hi,
                                       int m, std::string name = {});

/// Random power-law task with d ~ U(d_lo, d_hi), p1 ~ lognormal.
MalleableTask make_random_power_law_task(support::Rng& rng, double d_lo, double d_hi,
                                         int m, std::string name = {});

}  // namespace malsched::model
