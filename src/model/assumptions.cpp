#include "model/assumptions.hpp"

#include <cmath>
#include <sstream>

namespace malsched::model {

ValidationReport check_assumption1(const MalleableTask& task, double tol) {
  const int m = task.max_processors();
  for (int l = 1; l < m; ++l) {
    if (task.processing_time(l + 1) > task.processing_time(l) * (1.0 + tol)) {
      std::ostringstream os;
      os << "p(" << l + 1 << ") = " << task.processing_time(l + 1) << " > p(" << l
         << ") = " << task.processing_time(l);
      return {false, os.str()};
    }
  }
  return {};
}

ValidationReport check_assumption2(const MalleableTask& task, double tol) {
  const int m = task.max_processors();
  // Concavity over consecutive integer triples (with s(0) = 0) implies the
  // general chord inequality (2) for all 0 <= l'' <= l <= l' <= m.
  double prev_increment = task.speedup(1) - 0.0;  // s(1) - s(0) = 1
  for (int l = 1; l < m; ++l) {
    const double increment = task.speedup(l + 1) - task.speedup(l);
    if (increment > prev_increment + tol) {
      std::ostringstream os;
      os << "speedup increment s(" << l + 1 << ")-s(" << l << ") = " << increment
         << " exceeds s(" << l << ")-s(" << l - 1 << ") = " << prev_increment;
      return {false, os.str()};
    }
    prev_increment = increment;
  }
  return {};
}

ValidationReport check_assumption2prime(const MalleableTask& task, double tol) {
  const int m = task.max_processors();
  for (int l = 1; l < m; ++l) {
    if (task.work(l + 1) < task.work(l) * (1.0 - tol)) {
      std::ostringstream os;
      os << "W(" << l + 1 << ") = " << task.work(l + 1) << " < W(" << l
         << ") = " << task.work(l);
      return {false, os.str()};
    }
  }
  return {};
}

ValidationReport check_work_convex_in_time(const MalleableTask& task, double tol) {
  const int m = task.max_processors();
  // Breakpoints ordered by increasing processing time: l = m, m-1, ..., 1.
  // Convexity: for consecutive triples (p(l+1), W(l+1)), (p(l), W(l)),
  // (p(l-1), W(l-1)) the middle point lies on or below the chord. Plateaus
  // (equal processing times) are skipped — the function is not strictly a
  // graph over time there, and the LP construction skips those pieces too.
  for (int l = 2; l < m; ++l) {
    const double x0 = task.processing_time(l + 1), y0 = task.work(l + 1);
    const double x1 = task.processing_time(l), y1 = task.work(l);
    const double x2 = task.processing_time(l - 1), y2 = task.work(l - 1);
    if (x2 - x0 < tol) continue;
    const double chord = y0 + (y2 - y0) * (x1 - x0) / (x2 - x0);
    if (y1 > chord + tol * (1.0 + std::abs(chord))) {
      std::ostringstream os;
      os << "work at p(" << l << ") = " << y1 << " above chord " << chord;
      return {false, os.str()};
    }
  }
  return {};
}

bool satisfies_paper_model(const MalleableTask& task, double tol) {
  return check_assumption1(task, tol).ok && check_assumption2(task, tol).ok;
}

bool satisfies_generalized_model(const MalleableTask& task, double tol) {
  return check_assumption1(task, tol).ok && check_assumption2prime(task, tol).ok &&
         check_work_convex_in_time(task, tol).ok;
}

}  // namespace malsched::model
