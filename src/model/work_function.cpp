#include "model/work_function.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace malsched::model {

WorkFunction::WorkFunction(const MalleableTask& task) {
  const int m = task.max_processors();
  min_time_ = task.processing_time(m);
  max_time_ = task.processing_time(1);
  min_work_ = task.work(1);

  // Relative width below which an interval [p(l+1), p(l)] is treated as a
  // plateau: the affine piece would be numerically vertical, and the
  // breakpoints on either side determine the envelope there anyway.
  const double width_tol = 1e-9 * max_time_;
  for (int l = 1; l < m; ++l) {
    const double hi = task.processing_time(l);
    const double lo = task.processing_time(l + 1);
    const double width = lo - hi;  // note: lo = p(l+1) <= p(l) = hi, so <= 0
    if (hi - lo < width_tol) continue;
    // Eq. (8): slope and intercept of the chord through
    // (p(l), W(l)) and (p(l+1), W(l+1)).
    const double slope = (task.work(l + 1) - task.work(l)) / width;
    const double intercept = -task.processing_time(l) * task.processing_time(l + 1) / width;
    pieces_.push_back(WorkPiece{slope, intercept, l});
  }
}

double WorkFunction::value(double x) const {
  const double xc = std::clamp(x, min_time_, max_time_);
  if (pieces_.empty()) return min_work_;
  double best = -1e300;
  for (const WorkPiece& piece : pieces_) {
    best = std::max(best, piece.slope * xc + piece.intercept);
  }
  return best;
}

double WorkFunction::fractional_processors(double x) const {
  MALSCHED_ASSERT(x > 0.0);
  const double xc = std::clamp(x, min_time_, max_time_);
  return value(xc) / xc;
}

}  // namespace malsched::model
