#include "model/work_function.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace malsched::model {

namespace {

/// Relative width below which an interval [p(l+1), p(l)] is treated as a
/// plateau: the affine piece would be numerically vertical, and the
/// breakpoints on either side determine the envelope there anyway. Shared
/// by the constructor and count_pieces so the two can never disagree.
bool is_plateau(const MalleableTask& task, int l) {
  const double width_tol = 1e-9 * task.processing_time(1);
  return task.processing_time(l) - task.processing_time(l + 1) < width_tol;
}

}  // namespace

WorkFunction::WorkFunction(const MalleableTask& task) {
  const int m = task.max_processors();
  min_time_ = task.processing_time(m);
  max_time_ = task.processing_time(1);
  min_work_ = task.work(1);

  for (int l = 1; l < m; ++l) {
    if (is_plateau(task, l)) continue;
    const double hi = task.processing_time(l);
    const double lo = task.processing_time(l + 1);
    const double width = lo - hi;  // note: lo = p(l+1) <= p(l) = hi, so <= 0
    // Eq. (8): slope and intercept of the chord through
    // (p(l), W(l)) and (p(l+1), W(l+1)).
    const double slope = (task.work(l + 1) - task.work(l)) / width;
    const double intercept = -task.processing_time(l) * task.processing_time(l + 1) / width;
    pieces_.push_back(WorkPiece{slope, intercept, l});
  }
}

double WorkFunction::value(double x) const {
  const double xc = std::clamp(x, min_time_, max_time_);
  if (pieces_.empty()) return min_work_;
  double best = -1e300;
  for (const WorkPiece& piece : pieces_) {
    best = std::max(best, piece.slope * xc + piece.intercept);
  }
  return best;
}

double WorkFunction::fractional_processors(double x) const {
  MALSCHED_ASSERT(x > 0.0);
  const double xc = std::clamp(x, min_time_, max_time_);
  return value(xc) / xc;
}

int WorkFunction::count_pieces(const MalleableTask& task) {
  int count = 0;
  for (int l = 1; l < task.max_processors(); ++l) {
    if (!is_plateau(task, l)) ++count;
  }
  return count;
}

}  // namespace malsched::model
