// A full problem instance: precedence DAG + one malleable task per node +
// processor count m, plus the instance factories used by tests and benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "model/task.hpp"
#include "support/rng.hpp"

namespace malsched::model {

struct Instance {
  graph::Dag dag;
  std::vector<MalleableTask> tasks;
  int m = 1;  ///< number of identical processors

  int num_tasks() const { return static_cast<int>(tasks.size()); }
  const MalleableTask& task(int j) const { return tasks[static_cast<std::size_t>(j)]; }

  /// Total work when every task runs on one processor (the minimum possible
  /// total work under Assumption 2'): sum_j p_j(1).
  double min_total_work() const;

  /// Critical path length when every task runs on m processors (the minimum
  /// possible path length): longest path under weights p_j(m).
  double min_critical_path() const;

  /// max{min_critical_path, min_total_work / m} — a crude combinatorial
  /// lower bound on OPT, weaker than the LP bound but solver-free.
  double trivial_lower_bound() const;
};

/// Builds an instance from a DAG, calling `factory(node, m)` per node.
Instance make_instance(graph::Dag dag, int m,
                       const std::function<MalleableTask(int, int)>& factory);

/// Asserts structural sanity: acyclic, one task per node, each task table
/// sized m, positive times.
void validate_instance(const Instance& instance);

// ---- Named instance suite for experiments --------------------------------

enum class DagFamily {
  kChain,
  kIndependent,
  kForkJoin,
  kLayered,
  kRandom,
  kSeriesParallel,
  kIntree,
  kOuttree,
  kCholesky,
  kLu,
  kFft,
  kDiamond,
};

enum class TaskFamily {
  kPowerLaw,       // d ~ U(0.3, 1.0)
  kAmdahl,         // parallel fraction ~ U(0.5, 0.98)
  kRandomConcave,  // arbitrary concave speedups
  kMixed,          // uniform mixture of the above three
};

const char* to_string(DagFamily family);
const char* to_string(TaskFamily family);

std::vector<DagFamily> all_dag_families();

/// Builds a DAG of the given family with roughly `size_hint` nodes (exact
/// count depends on the family's combinatorics).
graph::Dag make_family_dag(DagFamily family, int size_hint, support::Rng& rng);

/// Full random instance: family DAG + random tasks of the given family.
Instance make_family_instance(DagFamily dag_family, TaskFamily task_family,
                              int size_hint, int m, support::Rng& rng);

}  // namespace malsched::model
