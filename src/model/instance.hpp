// A full problem instance: precedence DAG + one malleable task per node +
// processor count m, plus the instance factories used by tests and benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "model/task.hpp"
#include "support/rng.hpp"

namespace malsched::model {

struct Instance {
  graph::Dag dag;
  std::vector<MalleableTask> tasks;
  int m = 1;  ///< number of identical processors

  int num_tasks() const { return static_cast<int>(tasks.size()); }
  const MalleableTask& task(int j) const { return tasks[static_cast<std::size_t>(j)]; }

  /// Total work when every task runs on one processor (the minimum possible
  /// total work under Assumption 2'): sum_j p_j(1).
  double min_total_work() const;

  /// Critical path length when every task runs on m processors (the minimum
  /// possible path length): longest path under weights p_j(m).
  double min_critical_path() const;

  /// max{min_critical_path, min_total_work / m} — a crude combinatorial
  /// lower bound on OPT, weaker than the LP bound but solver-free.
  double trivial_lower_bound() const;

  /// Per-task work-envelope piece counts (WorkFunction::count_pieces),
  /// memoized: LP fingerprinting and cross-stride row mapping only need the
  /// counts, and rebuilding a WorkFunction per task costs O(n m) allocations
  /// per call. The memo is keyed by a checksum of the task tables, so
  /// mutating `tasks` in place transparently recomputes it, and it is
  /// published through an atomic shared_ptr so concurrent readers (sweeps
  /// re-solving one instance across threads) are safe. Result is indexed by
  /// task id and shares ownership with the memo.
  std::shared_ptr<const std::vector<int>> piece_counts() const;

  /// Transitively reduced predecessor lists, memoized. The allotment LPs
  /// need one precedence row per arc, but a transitively redundant arc
  /// (i, j) is implied by the chain through any intermediate task (its x is
  /// strictly positive), so the LP builders emit rows only for the reduced
  /// arc set — identical feasible region, far fewer rows on dense DAGs.
  /// The memo is guarded by Dag::revision(), which every structural
  /// mutation bumps (including edge removals via filter_edges). Published
  /// through an atomic shared_ptr like piece_counts; indexed by task id.
  std::shared_ptr<const std::vector<std::vector<graph::NodeId>>>
  reduced_predecessors() const;

 private:
  struct PieceCountMemo {
    std::uint64_t token = 0;  ///< checksum of the task tables it was built from
    std::vector<int> counts;
  };
  mutable std::shared_ptr<const PieceCountMemo> piece_count_memo_;

  struct ReducedPredsMemo {
    std::uint64_t token = 0;  ///< Dag::revision() it was built from
    std::vector<std::vector<graph::NodeId>> preds;
  };
  mutable std::shared_ptr<const ReducedPredsMemo> reduced_preds_memo_;
};

// ---- Validation ----------------------------------------------------------

/// What check_instance found wrong (kNone = valid).
enum class InstanceDefect {
  kNone,
  kBadProcessorCount,  ///< m < 1
  kNoTasks,            ///< zero tasks: no work to schedule, C* would be 0
  kTaskCountMismatch,  ///< tasks.size() != dag.num_nodes()
  kCyclicDag,          ///< precedence graph has a cycle
  kTaskTableMismatch,  ///< some task's table is not sized m
};

const char* to_string(InstanceDefect defect);

struct InstanceCheck {
  InstanceDefect defect = InstanceDefect::kNone;
  std::string detail;  ///< human-readable description of the first defect

  explicit operator bool() const { return defect == InstanceDefect::kNone; }
};

/// Non-aborting structural validation: returns the first defect found
/// (acyclicity, task/node count, table sizes, positive m, at least one
/// task). SchedulerService turns this into a typed Status at admission;
/// validate_instance below is the asserting wrapper for direct library use.
InstanceCheck check_instance(const Instance& instance);

/// Builds an instance from a DAG, calling `factory(node, m)` per node.
Instance make_instance(graph::Dag dag, int m,
                       const std::function<MalleableTask(int, int)>& factory);

/// Asserts check_instance passes: acyclic, one task per node, each task
/// table sized m (task construction already guarantees positive times).
void validate_instance(const Instance& instance);

// ---- Named instance suite for experiments --------------------------------

enum class DagFamily {
  kChain,
  kIndependent,
  kForkJoin,
  kLayered,
  kRandom,
  kSeriesParallel,
  kIntree,
  kOuttree,
  kCholesky,
  kLu,
  kFft,
  kDiamond,
};

enum class TaskFamily {
  kPowerLaw,       // d ~ U(0.3, 1.0)
  kAmdahl,         // parallel fraction ~ U(0.5, 0.98)
  kRandomConcave,  // arbitrary concave speedups
  kMixed,          // uniform mixture of the above three
};

const char* to_string(DagFamily family);
const char* to_string(TaskFamily family);

std::vector<DagFamily> all_dag_families();

/// Builds a DAG of the given family with roughly `size_hint` nodes (exact
/// count depends on the family's combinatorics).
graph::Dag make_family_dag(DagFamily family, int size_hint, support::Rng& rng);

/// One random task of the given family, sized for m processors. Exposed so
/// benches that hoist DAG generation out of their sweep loops can redraw
/// just the tasks on an Instance copy (see make_family_instance, which is
/// exactly make_family_dag + n calls of this).
MalleableTask make_family_task(TaskFamily family, int m, support::Rng& rng);

/// Full random instance: family DAG + random tasks of the given family.
Instance make_family_instance(DagFamily dag_family, TaskFamily task_family,
                              int size_hint, int m, support::Rng& rng);

}  // namespace malsched::model
