// Malleable task: discrete processing-time table p(1..m).
//
// A malleable task J_j can run on any integer number l in {1..m} of
// identical processors with processing time p_j(l) (communication and
// synchronization overhead folded in, following Turek et al. and
// Prasanna-Musicus). The paper's model further requires:
//   Assumption 1: p_j(l) non-increasing in l,
//   Assumption 2: speedup s_j(l) = p_j(1)/p_j(l) concave in l (p_j(0) = inf,
//                 so s_j(0) = 0 participates in the concavity inequality).
// Validation lives in assumptions.hpp; this type only stores the table and
// derived quantities.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace malsched::model {

class MalleableTask {
 public:
  MalleableTask() = default;

  /// `times[l-1]` is p(l); all entries must be positive.
  explicit MalleableTask(std::vector<double> times, std::string name = {});

  /// Shares an existing immutable table (refcount bump, no deep copy).
  /// Instance generators use this to share one table across tasks of the
  /// same shape, and it is what makes copying an Instance (bench revision
  /// loops, adversarial-search candidates) O(n) pointer bumps instead of n
  /// table allocations.
  explicit MalleableTask(std::shared_ptr<const std::vector<double>> times,
                         std::string name = {});

  int max_processors() const {
    return times_ ? static_cast<int>(times_->size()) : 0;
  }

  /// p(l) for l in [1, m].
  double processing_time(int l) const;

  /// W(l) = l * p(l).
  double work(int l) const;

  /// s(l) = p(1)/p(l); s(0) = 0 by convention.
  double speedup(int l) const;

  /// Smallest l with p(l) <= x (canonical allotment for a time budget x).
  /// Requires x >= p(m), i.e. the budget must be achievable.
  int smallest_allotment_within(double x) const;

  /// Largest l with p(l) >= x, i.e. the l for which x lies in the rounding
  /// interval [p(l+1), p(l)] (l = m when x = p(m)). Requires
  /// p(m) <= x <= p(1) up to a small tolerance.
  int bracket_lower_processors(double x) const;

  const std::string& name() const { return name_; }
  const std::vector<double>& table() const;

  /// The underlying immutable table, for sharing across tasks (may be null
  /// on a default-constructed task).
  const std::shared_ptr<const std::vector<double>>& shared_table() const {
    return times_;
  }

 private:
  // Immutable and shared: tasks are value types, but their tables never
  // change after construction, so copies alias one allocation.
  std::shared_ptr<const std::vector<double>> times_;  // (*times_)[l-1] = p(l)
  std::string name_;
};

}  // namespace malsched::model
