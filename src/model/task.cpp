#include "model/task.hpp"

#include "support/assert.hpp"

namespace malsched::model {

namespace {
constexpr double kEps = 1e-9;
}

MalleableTask::MalleableTask(std::vector<double> times, std::string name)
    : MalleableTask(
          std::make_shared<const std::vector<double>>(std::move(times)),
          std::move(name)) {}

MalleableTask::MalleableTask(std::shared_ptr<const std::vector<double>> times,
                             std::string name)
    : times_(std::move(times)), name_(std::move(name)) {
  MALSCHED_ASSERT_MSG(times_ != nullptr && !times_->empty(),
                      "task needs at least one allotment");
  for (double t : *times_) {
    MALSCHED_ASSERT_MSG(t > 0.0, "processing times must be positive");
  }
}

const std::vector<double>& MalleableTask::table() const {
  static const std::vector<double> kEmpty;
  return times_ ? *times_ : kEmpty;
}

double MalleableTask::processing_time(int l) const {
  MALSCHED_ASSERT(l >= 1 && l <= max_processors());
  return (*times_)[static_cast<std::size_t>(l - 1)];
}

double MalleableTask::work(int l) const { return l * processing_time(l); }

double MalleableTask::speedup(int l) const {
  if (l == 0) return 0.0;
  return processing_time(1) / processing_time(l);
}

int MalleableTask::smallest_allotment_within(double x) const {
  const int m = max_processors();
  MALSCHED_ASSERT_MSG(x >= processing_time(m) - kEps, "time budget below p(m)");
  for (int l = 1; l <= m; ++l) {
    if (processing_time(l) <= x + kEps) return l;
  }
  return m;
}

int MalleableTask::bracket_lower_processors(double x) const {
  const int m = max_processors();
  MALSCHED_ASSERT(x >= processing_time(m) - kEps);
  MALSCHED_ASSERT(x <= processing_time(1) + kEps);
  int best = 1;
  for (int l = 1; l <= m; ++l) {
    if (processing_time(l) >= x - kEps) best = l;
  }
  return best;
}

}  // namespace malsched::model
