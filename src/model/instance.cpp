#include "model/instance.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/speedup.hpp"
#include "support/assert.hpp"

namespace malsched::model {

double Instance::min_total_work() const {
  double total = 0.0;
  for (const auto& task : tasks) total += task.work(1);
  return total;
}

double Instance::min_critical_path() const {
  std::vector<double> weights(tasks.size());
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    weights[j] = tasks[j].processing_time(m);
  }
  return graph::longest_path(dag, weights);
}

double Instance::trivial_lower_bound() const {
  return std::max(min_critical_path(), min_total_work() / m);
}

Instance make_instance(graph::Dag dag, int m,
                       const std::function<MalleableTask(int, int)>& factory) {
  Instance instance;
  instance.m = m;
  const int n = dag.num_nodes();
  instance.dag = std::move(dag);
  instance.tasks.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) instance.tasks.push_back(factory(j, m));
  validate_instance(instance);
  return instance;
}

void validate_instance(const Instance& instance) {
  MALSCHED_ASSERT(instance.m >= 1);
  MALSCHED_ASSERT(static_cast<int>(instance.tasks.size()) == instance.dag.num_nodes());
  MALSCHED_ASSERT_MSG(graph::is_acyclic(instance.dag), "precedence graph has a cycle");
  for (const auto& task : instance.tasks) {
    MALSCHED_ASSERT(task.max_processors() == instance.m);
  }
}

const char* to_string(DagFamily family) {
  switch (family) {
    case DagFamily::kChain: return "chain";
    case DagFamily::kIndependent: return "independent";
    case DagFamily::kForkJoin: return "fork-join";
    case DagFamily::kLayered: return "layered";
    case DagFamily::kRandom: return "random-dag";
    case DagFamily::kSeriesParallel: return "series-parallel";
    case DagFamily::kIntree: return "in-tree";
    case DagFamily::kOuttree: return "out-tree";
    case DagFamily::kCholesky: return "tiled-cholesky";
    case DagFamily::kLu: return "tiled-lu";
    case DagFamily::kFft: return "fft";
    case DagFamily::kDiamond: return "diamond";
  }
  return "unknown";
}

const char* to_string(TaskFamily family) {
  switch (family) {
    case TaskFamily::kPowerLaw: return "power-law";
    case TaskFamily::kAmdahl: return "amdahl";
    case TaskFamily::kRandomConcave: return "random-concave";
    case TaskFamily::kMixed: return "mixed";
  }
  return "unknown";
}

std::vector<DagFamily> all_dag_families() {
  return {DagFamily::kChain,         DagFamily::kIndependent,
          DagFamily::kForkJoin,      DagFamily::kLayered,
          DagFamily::kRandom,        DagFamily::kSeriesParallel,
          DagFamily::kIntree,        DagFamily::kOuttree,
          DagFamily::kCholesky,      DagFamily::kLu,
          DagFamily::kFft,           DagFamily::kDiamond};
}

graph::Dag make_family_dag(DagFamily family, int size_hint, support::Rng& rng) {
  const int n = std::max(1, size_hint);
  switch (family) {
    case DagFamily::kChain:
      return graph::make_chain(n);
    case DagFamily::kIndependent:
      return graph::make_independent(n);
    case DagFamily::kForkJoin:
      return graph::make_fork_join(std::max(1, n - 2));
    case DagFamily::kLayered: {
      const int width = std::max(2, static_cast<int>(std::sqrt(n)));
      const int layers = std::max(2, (n + width - 1) / width);
      return graph::make_layered(layers, width, 3, rng);
    }
    case DagFamily::kRandom:
      return graph::make_random_dag(n, std::min(0.5, 4.0 / n), rng);
    case DagFamily::kSeriesParallel:
      return graph::make_series_parallel(n, rng);
    case DagFamily::kIntree: {
      int levels = 1;
      while ((1 << (levels + 1)) - 1 <= n) ++levels;
      return graph::make_intree(levels);
    }
    case DagFamily::kOuttree: {
      int levels = 1;
      while ((1 << (levels + 1)) - 1 <= n) ++levels;
      return graph::make_outtree(levels);
    }
    case DagFamily::kCholesky: {
      int t = 1;
      while (graph::tiled_cholesky_size(t + 1) <= n) ++t;
      return graph::make_tiled_cholesky(t);
    }
    case DagFamily::kLu: {
      int t = 1;
      while (graph::tiled_lu_size(t + 1) <= n) ++t;
      return graph::make_tiled_lu(t);
    }
    case DagFamily::kFft: {
      int stages = 0;
      while ((stages + 2) * (1 << (stages + 1)) <= n) ++stages;
      return graph::make_fft(stages);
    }
    case DagFamily::kDiamond: {
      const int side = std::max(1, static_cast<int>(std::sqrt(n)));
      return graph::make_diamond(side, side);
    }
  }
  MALSCHED_ASSERT(false);
  return graph::Dag(0);
}

namespace {

MalleableTask make_family_task(TaskFamily family, int m, support::Rng& rng) {
  switch (family) {
    case TaskFamily::kPowerLaw:
      return make_random_power_law_task(rng, 0.3, 1.0, m);
    case TaskFamily::kAmdahl:
      return make_amdahl_task(rng.lognormal(2.0, 0.75), rng.uniform(0.5, 0.98), m);
    case TaskFamily::kRandomConcave:
      return make_random_concave_task(rng, 1.0, 50.0, m);
    case TaskFamily::kMixed: {
      const int pick = rng.uniform_int(0, 2);
      if (pick == 0) return make_family_task(TaskFamily::kPowerLaw, m, rng);
      if (pick == 1) return make_family_task(TaskFamily::kAmdahl, m, rng);
      return make_family_task(TaskFamily::kRandomConcave, m, rng);
    }
  }
  MALSCHED_ASSERT(false);
  return make_sequential_task(1.0, m);
}

}  // namespace

Instance make_family_instance(DagFamily dag_family, TaskFamily task_family,
                              int size_hint, int m, support::Rng& rng) {
  graph::Dag dag = make_family_dag(dag_family, size_hint, rng);
  return make_instance(std::move(dag), m, [&](int, int procs) {
    return make_family_task(task_family, procs, rng);
  });
}

}  // namespace malsched::model
