#include "model/instance.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/speedup.hpp"
#include "model/work_function.hpp"
#include "support/assert.hpp"

namespace malsched::model {

namespace {

/// Cheap checksum of the task tables: detects in-place mutation of `tasks`
/// (FNV-1a over sizes and double bit patterns, allocation-free).
std::uint64_t task_table_token(const std::vector<MalleableTask>& tasks) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kPrime;
  };
  mix(tasks.size());
  for (const MalleableTask& task : tasks) {
    mix(task.table().size());
    for (const double t : task.table()) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(t), "double must be 64-bit");
      std::memcpy(&bits, &t, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

}  // namespace

double Instance::min_total_work() const {
  double total = 0.0;
  for (const auto& task : tasks) total += task.work(1);
  return total;
}

double Instance::min_critical_path() const {
  std::vector<double> weights(tasks.size());
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    weights[j] = tasks[j].processing_time(m);
  }
  return graph::longest_path(dag, weights);
}

double Instance::trivial_lower_bound() const {
  return std::max(min_critical_path(), min_total_work() / m);
}

std::shared_ptr<const std::vector<int>> Instance::piece_counts() const {
  const std::uint64_t token = task_table_token(tasks);
  std::shared_ptr<const PieceCountMemo> memo = std::atomic_load(&piece_count_memo_);
  if (memo == nullptr || memo->token != token) {
    auto fresh = std::make_shared<PieceCountMemo>();
    fresh->token = token;
    fresh->counts.reserve(tasks.size());
    for (const MalleableTask& task : tasks) {
      fresh->counts.push_back(WorkFunction::count_pieces(task));
    }
    memo = fresh;
    // Concurrent first calls may both compute; last store wins with
    // identical content, and every caller holds its own snapshot.
    std::atomic_store(&piece_count_memo_,
                      std::shared_ptr<const PieceCountMemo>(memo));
  }
  return std::shared_ptr<const std::vector<int>>(memo, &memo->counts);
}

std::shared_ptr<const std::vector<std::vector<graph::NodeId>>>
Instance::reduced_predecessors() const {
  // Dag::revision() bumps on every structural mutation, including
  // edge-count-preserving sequences (filter_edges then re-add) that a
  // (nodes, edges) pair would miss; nodes and edges are mixed in as a
  // guard for wholesale dag replacement with a coincidentally equal
  // revision.
  const std::uint64_t token =
      dag.revision() * 0x9E3779B97F4A7C15ULL ^
      (static_cast<std::uint64_t>(dag.num_nodes()) << 32) ^
      static_cast<std::uint64_t>(dag.num_edges());
  std::shared_ptr<const ReducedPredsMemo> memo =
      std::atomic_load(&reduced_preds_memo_);
  if (memo == nullptr || memo->token != token) {
    auto fresh = std::make_shared<ReducedPredsMemo>();
    fresh->token = token;
    const int n = dag.num_nodes();
    fresh->preds.resize(static_cast<std::size_t>(n));
    // Filter each ORIGINAL predecessor list through the bitset closure:
    // edge (i, j) is redundant iff i reaches some other predecessor of j.
    // Filtering (rather than taking the reduced graph's lists) preserves
    // the original edge-insertion order, so DAGs without redundant arcs
    // produce bit-for-bit the PR-1 constraint rows and pivot sequences.
    const graph::ReachabilityBitset reach = graph::transitive_closure_bitset(dag);
    const std::size_t stride = reach.words_per_row();
    std::vector<std::uint64_t> mask(stride, 0);
    for (graph::NodeId j = 0; j < n; ++j) {
      const auto& orig = dag.predecessors(j);
      auto& kept = fresh->preds[static_cast<std::size_t>(j)];
      kept.reserve(orig.size());
      for (const graph::NodeId i : orig) {
        mask[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1}
                                                  << (static_cast<std::size_t>(i) & 63);
      }
      for (const graph::NodeId i : orig) {
        // reach(i, i) is always false in a DAG, so i's own mask bit never
        // triggers the test.
        const std::uint64_t* row = reach.row(i);
        bool redundant = false;
        for (std::size_t k = 0; k < stride; ++k) {
          if (row[k] & mask[k]) {
            redundant = true;
            break;
          }
        }
        if (!redundant) kept.push_back(i);
      }
      for (const graph::NodeId i : orig) {
        mask[static_cast<std::size_t>(i) >> 6] = 0;
      }
    }
    memo = fresh;
    std::atomic_store(&reduced_preds_memo_,
                      std::shared_ptr<const ReducedPredsMemo>(memo));
  }
  return std::shared_ptr<const std::vector<std::vector<graph::NodeId>>>(
      memo, &memo->preds);
}

Instance make_instance(graph::Dag dag, int m,
                       const std::function<MalleableTask(int, int)>& factory) {
  Instance instance;
  instance.m = m;
  const int n = dag.num_nodes();
  instance.dag = std::move(dag);
  instance.tasks.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) instance.tasks.push_back(factory(j, m));
  validate_instance(instance);
  return instance;
}

const char* to_string(InstanceDefect defect) {
  switch (defect) {
    case InstanceDefect::kNone: return "none";
    case InstanceDefect::kBadProcessorCount: return "bad-processor-count";
    case InstanceDefect::kNoTasks: return "no-tasks";
    case InstanceDefect::kTaskCountMismatch: return "task-count-mismatch";
    case InstanceDefect::kCyclicDag: return "cyclic-dag";
    case InstanceDefect::kTaskTableMismatch: return "task-table-mismatch";
  }
  return "unknown";
}

InstanceCheck check_instance(const Instance& instance) {
  const auto fail = [](InstanceDefect defect, std::string detail) {
    return InstanceCheck{defect, std::move(detail)};
  };
  if (instance.m < 1) {
    return fail(InstanceDefect::kBadProcessorCount,
                "processor count m = " + std::to_string(instance.m) + " < 1");
  }
  if (instance.tasks.empty()) {
    return fail(InstanceDefect::kNoTasks,
                "instance has no tasks (zero work, no schedule to certify)");
  }
  if (static_cast<int>(instance.tasks.size()) != instance.dag.num_nodes()) {
    return fail(InstanceDefect::kTaskCountMismatch,
                std::to_string(instance.tasks.size()) + " tasks for " +
                    std::to_string(instance.dag.num_nodes()) + " DAG nodes");
  }
  if (!graph::is_acyclic(instance.dag)) {
    return fail(InstanceDefect::kCyclicDag, "precedence graph has a cycle");
  }
  for (std::size_t j = 0; j < instance.tasks.size(); ++j) {
    if (instance.tasks[j].max_processors() != instance.m) {
      return fail(InstanceDefect::kTaskTableMismatch,
                  "task " + std::to_string(j) + " has a table for " +
                      std::to_string(instance.tasks[j].max_processors()) +
                      " processors, instance has m = " +
                      std::to_string(instance.m));
    }
  }
  return {};
}

void validate_instance(const Instance& instance) {
  const InstanceCheck check = check_instance(instance);
  MALSCHED_ASSERT_MSG(static_cast<bool>(check), check.detail.c_str());
}

const char* to_string(DagFamily family) {
  switch (family) {
    case DagFamily::kChain: return "chain";
    case DagFamily::kIndependent: return "independent";
    case DagFamily::kForkJoin: return "fork-join";
    case DagFamily::kLayered: return "layered";
    case DagFamily::kRandom: return "random-dag";
    case DagFamily::kSeriesParallel: return "series-parallel";
    case DagFamily::kIntree: return "in-tree";
    case DagFamily::kOuttree: return "out-tree";
    case DagFamily::kCholesky: return "tiled-cholesky";
    case DagFamily::kLu: return "tiled-lu";
    case DagFamily::kFft: return "fft";
    case DagFamily::kDiamond: return "diamond";
  }
  return "unknown";
}

const char* to_string(TaskFamily family) {
  switch (family) {
    case TaskFamily::kPowerLaw: return "power-law";
    case TaskFamily::kAmdahl: return "amdahl";
    case TaskFamily::kRandomConcave: return "random-concave";
    case TaskFamily::kMixed: return "mixed";
  }
  return "unknown";
}

std::vector<DagFamily> all_dag_families() {
  return {DagFamily::kChain,         DagFamily::kIndependent,
          DagFamily::kForkJoin,      DagFamily::kLayered,
          DagFamily::kRandom,        DagFamily::kSeriesParallel,
          DagFamily::kIntree,        DagFamily::kOuttree,
          DagFamily::kCholesky,      DagFamily::kLu,
          DagFamily::kFft,           DagFamily::kDiamond};
}

graph::Dag make_family_dag(DagFamily family, int size_hint, support::Rng& rng) {
  const int n = std::max(1, size_hint);
  switch (family) {
    case DagFamily::kChain:
      return graph::make_chain(n);
    case DagFamily::kIndependent:
      return graph::make_independent(n);
    case DagFamily::kForkJoin:
      return graph::make_fork_join(std::max(1, n - 2));
    case DagFamily::kLayered: {
      const int width = std::max(2, static_cast<int>(std::sqrt(n)));
      const int layers = std::max(2, (n + width - 1) / width);
      return graph::make_layered(layers, width, 3, rng);
    }
    case DagFamily::kRandom:
      return graph::make_random_dag(n, std::min(0.5, 4.0 / n), rng);
    case DagFamily::kSeriesParallel:
      return graph::make_series_parallel(n, rng);
    case DagFamily::kIntree: {
      int levels = 1;
      while ((1 << (levels + 1)) - 1 <= n) ++levels;
      return graph::make_intree(levels);
    }
    case DagFamily::kOuttree: {
      int levels = 1;
      while ((1 << (levels + 1)) - 1 <= n) ++levels;
      return graph::make_outtree(levels);
    }
    case DagFamily::kCholesky: {
      int t = 1;
      while (graph::tiled_cholesky_size(t + 1) <= n) ++t;
      return graph::make_tiled_cholesky(t);
    }
    case DagFamily::kLu: {
      int t = 1;
      while (graph::tiled_lu_size(t + 1) <= n) ++t;
      return graph::make_tiled_lu(t);
    }
    case DagFamily::kFft: {
      int stages = 0;
      while ((stages + 2) * (1 << (stages + 1)) <= n) ++stages;
      return graph::make_fft(stages);
    }
    case DagFamily::kDiamond: {
      const int side = std::max(1, static_cast<int>(std::sqrt(n)));
      return graph::make_diamond(side, side);
    }
  }
  MALSCHED_ASSERT(false);
  return graph::Dag(0);
}

MalleableTask make_family_task(TaskFamily family, int m, support::Rng& rng) {
  switch (family) {
    case TaskFamily::kPowerLaw:
      return make_random_power_law_task(rng, 0.3, 1.0, m);
    case TaskFamily::kAmdahl:
      return make_amdahl_task(rng.lognormal(2.0, 0.75), rng.uniform(0.5, 0.98), m);
    case TaskFamily::kRandomConcave:
      return make_random_concave_task(rng, 1.0, 50.0, m);
    case TaskFamily::kMixed: {
      const int pick = rng.uniform_int(0, 2);
      if (pick == 0) return make_family_task(TaskFamily::kPowerLaw, m, rng);
      if (pick == 1) return make_family_task(TaskFamily::kAmdahl, m, rng);
      return make_family_task(TaskFamily::kRandomConcave, m, rng);
    }
  }
  MALSCHED_ASSERT(false);
  return make_sequential_task(1.0, m);
}

Instance make_family_instance(DagFamily dag_family, TaskFamily task_family,
                              int size_hint, int m, support::Rng& rng) {
  graph::Dag dag = make_family_dag(dag_family, size_hint, rng);
  return make_instance(std::move(dag), m, [&](int, int procs) {
    return make_family_task(task_family, procs, rng);
  });
}

}  // namespace malsched::model
