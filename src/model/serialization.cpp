#include "model/serialization.hpp"

#include <array>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/assert.hpp"

namespace malsched::model {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Next non-empty, non-comment line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << "malsched-instance v1\n";
  os << "m " << instance.m << "\n";
  os << "tasks " << instance.num_tasks() << "\n";
  os << std::setprecision(17);
  for (int j = 0; j < instance.num_tasks(); ++j) {
    const MalleableTask& task = instance.task(j);
    os << "task " << j << ' ' << (task.name().empty() ? "-" : task.name());
    for (int l = 1; l <= instance.m; ++l) os << ' ' << task.processing_time(l);
    os << "\n";
  }
  os << "edges " << instance.dag.num_edges() << "\n";
  for (int v = 0; v < instance.dag.num_nodes(); ++v) {
    for (graph::NodeId w : instance.dag.successors(v)) {
      os << "edge " << v << ' ' << w << "\n";
    }
  }
}

std::optional<Instance> read_instance(std::istream& is, std::string* error) {
  std::string line;
  if (!next_line(is, line) || line.rfind("malsched-instance", 0) != 0) {
    fail(error, "missing 'malsched-instance' header");
    return std::nullopt;
  }

  int m = 0, n = 0;
  {
    if (!next_line(is, line)) {
      fail(error, "missing 'm' line");
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword >> m) || keyword != "m" || m < 1) {
      fail(error, "bad 'm' line: " + line);
      return std::nullopt;
    }
    if (!next_line(is, line)) {
      fail(error, "missing 'tasks' line");
      return std::nullopt;
    }
    std::istringstream ts(line);
    if (!(ts >> keyword >> n) || keyword != "tasks" || n < 0) {
      fail(error, "bad 'tasks' line: " + line);
      return std::nullopt;
    }
  }

  Instance instance;
  instance.m = m;
  instance.dag = graph::Dag(n);
  instance.tasks.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    if (!next_line(is, line)) {
      fail(error, "missing task line " + std::to_string(j));
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string keyword, name;
    int id = -1;
    if (!(ls >> keyword >> id >> name) || keyword != "task" || id != j) {
      fail(error, "bad task line: " + line);
      return std::nullopt;
    }
    std::vector<double> times;
    double t = 0.0;
    while (ls >> t) times.push_back(t);
    if (static_cast<int>(times.size()) != m) {
      fail(error, "task " + std::to_string(j) + " has " +
                      std::to_string(times.size()) + " times, expected " +
                      std::to_string(m));
      return std::nullopt;
    }
    for (double x : times) {
      if (!(x > 0.0)) {
        fail(error, "task " + std::to_string(j) + " has a non-positive time");
        return std::nullopt;
      }
    }
    instance.tasks.emplace_back(std::move(times), name == "-" ? "" : name);
  }

  int k = 0;
  if (!next_line(is, line)) {
    fail(error, "missing 'edges' line");
    return std::nullopt;
  }
  {
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword >> k) || keyword != "edges" || k < 0) {
      fail(error, "bad 'edges' line: " + line);
      return std::nullopt;
    }
  }
  for (int e = 0; e < k; ++e) {
    if (!next_line(is, line)) {
      fail(error, "missing edge line " + std::to_string(e));
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string keyword;
    int from = -1, to = -1;
    if (!(ls >> keyword >> from >> to) || keyword != "edge" || from < 0 ||
        from >= n || to < 0 || to >= n || from == to) {
      fail(error, "bad edge line: " + line);
      return std::nullopt;
    }
    instance.dag.add_edge(from, to);
  }

  if (!graph::is_acyclic(instance.dag)) {
    fail(error, "precedence graph has a cycle");
    return std::nullopt;
  }
  return instance;
}

// ---- Wire layer -----------------------------------------------------------

namespace wire {

std::uint32_t crc32(std::string_view bytes) {
  // Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the
  // same checksum gzip and PNG use, so frames can be cross-checked with
  // standard tools.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace wire

namespace {

constexpr char kFrameMagic0 = 'M';
constexpr char kFrameMagic1 = 'F';

}  // namespace

void write_frame(std::ostream& os, std::string_view payload) {
  MALSCHED_ASSERT_MSG(payload.size() <= kMaxFramePayload,
                      "frame payload exceeds kMaxFramePayload");
  std::string header;
  header.push_back(kFrameMagic0);
  header.push_back(kFrameMagic1);
  wire::append_u32(header, static_cast<std::uint32_t>(payload.size()));
  wire::append_u32(header, wire::crc32(payload));
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

core::Status read_frame(std::istream& is, std::string& payload,
                        std::uint32_t max_payload) {
  char header[10];
  is.read(header, sizeof(header));
  const std::size_t got = static_cast<std::size_t>(is.gcount());
  if (got < sizeof(header)) {
    return core::Status::error(
        core::StatusCode::kTruncatedFrame,
        got == 0 ? "end of stream at frame boundary"
                 : "stream ended inside a frame header (" +
                       std::to_string(got) + " of 10 bytes)");
  }
  if (header[0] != kFrameMagic0 || header[1] != kFrameMagic1) {
    return core::Status::error(core::StatusCode::kCorruptFrame,
                               "bad frame magic (not 'MF')");
  }
  const std::string_view fields(header + 2, 8);
  std::size_t offset = 0;
  std::uint32_t length = 0, checksum = 0;
  wire::read_u32(fields, offset, length);
  wire::read_u32(fields, offset, checksum);
  if (length > max_payload) {
    // kMalformedRecord, not kCorruptFrame: the frame may be perfectly
    // intact — it is simply larger than THIS reader is willing to decode
    // (the router caps request frames far below the trace-file bound).
    // Screened before the resize below, so no allocation happens.
    return core::Status::error(core::StatusCode::kMalformedRecord,
                               "frame length " + std::to_string(length) +
                                   " exceeds this reader's " +
                                   std::to_string(max_payload) +
                                   "-byte payload cap");
  }
  payload.resize(length);
  if (length > 0) {
    is.read(payload.data(), static_cast<std::streamsize>(length));
    const std::size_t body = static_cast<std::size_t>(is.gcount());
    if (body < length) {
      payload.clear();
      return core::Status::error(core::StatusCode::kTruncatedFrame,
                                 "stream ended inside a frame payload (" +
                                     std::to_string(body) + " of " +
                                     std::to_string(length) + " bytes)");
    }
  }
  if (wire::crc32(payload) != checksum) {
    payload.clear();
    return core::Status::error(core::StatusCode::kCorruptFrame,
                               "frame CRC-32 mismatch");
  }
  return core::Status();
}

// ---- Binary instance codec -------------------------------------------------

void append_instance_binary(std::string& out, const Instance& instance) {
  wire::append_i32(out, instance.m);
  wire::append_i32(out, instance.num_tasks());
  for (int j = 0; j < instance.num_tasks(); ++j) {
    const MalleableTask& task = instance.task(j);
    wire::append_string(out, task.name());
    for (int l = 1; l <= instance.m; ++l) {
      wire::append_f64(out, task.processing_time(l));
    }
  }

  // Edges are emitted in an order that reproduces BOTH adjacency lists —
  // successors per node AND predecessors per node — when the reader
  // re-inserts them sequentially. Either list alone is a projection of the
  // Dag's original insertion sequence; emitting in plain (node, successor)
  // order would silently permute the predecessor lists, which permutes LP
  // constraint rows and sends the simplex down a different (equally
  // optimal) pivot path — breaking the pivot-exact record/replay contract.
  // The merge below reconstructs an insertion sequence with the same two
  // projections: an edge is emit-table when it is at the FRONT of its
  // source's remaining successor queue and of its target's remaining
  // predecessor queue, and consuming it can only unblock edges at the new
  // fronts of those two nodes, so a worklist seeded with every node visits
  // O(n + k) candidates.
  const graph::Dag& dag = instance.dag;
  const int n = dag.num_nodes();
  std::vector<std::size_t> out_pos(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> in_pos(static_cast<std::size_t>(n), 0);
  wire::append_u32(out, static_cast<std::uint32_t>(dag.num_edges()));
  std::size_t emitted = 0;
  std::vector<graph::NodeId> work;
  work.reserve(static_cast<std::size_t>(n));
  for (graph::NodeId v = n; v-- > 0;) work.push_back(v);
  const auto try_emit_front = [&](graph::NodeId u) {
    const auto uu = static_cast<std::size_t>(u);
    if (out_pos[uu] == dag.successors(u).size()) return;
    const graph::NodeId v = dag.successors(u)[out_pos[uu]];
    const auto vu = static_cast<std::size_t>(v);
    if (dag.predecessors(v)[in_pos[vu]] != u) return;
    wire::append_u32(out, static_cast<std::uint32_t>(u));
    wire::append_u32(out, static_cast<std::uint32_t>(v));
    ++out_pos[uu];
    ++in_pos[vu];
    ++emitted;
    work.push_back(u);
    work.push_back(v);
  };
  while (!work.empty()) {
    const graph::NodeId w = work.back();
    work.pop_back();
    try_emit_front(w);
    const auto wu = static_cast<std::size_t>(w);
    if (in_pos[wu] < dag.predecessors(w).size()) {
      try_emit_front(dag.predecessors(w)[in_pos[wu]]);
    }
  }
  // Unreachable for adjacency lists produced by sequential insertion (the
  // original sequence witnesses a full merge); kept so encoding terminates
  // even on a Dag mutated through some future non-append path.
  if (emitted < dag.num_edges()) {
    for (graph::NodeId v = 0; v < n; ++v) {
      const auto vu = static_cast<std::size_t>(v);
      for (std::size_t i = out_pos[vu]; i < dag.successors(v).size(); ++i) {
        wire::append_u32(out, static_cast<std::uint32_t>(v));
        wire::append_u32(out, static_cast<std::uint32_t>(dag.successors(v)[i]));
      }
    }
  }
}

core::Status read_instance_binary(std::string_view in, std::size_t& offset,
                                  Instance& out) {
  const auto malformed = [](const std::string& detail) {
    return core::Status::error(core::StatusCode::kMalformedRecord,
                               "instance: " + detail);
  };
  std::size_t at = offset;  // commit to `offset` only on success
  std::int32_t m = 0, n = 0;
  if (!wire::read_i32(in, at, m) || !wire::read_i32(in, at, n)) {
    return malformed("truncated header");
  }
  if (m < 1) return malformed("processor count " + std::to_string(m) + " < 1");
  if (n < 0) return malformed("negative task count");
  // Each task costs at least 4 + 8m bytes; reject counts the buffer cannot
  // possibly hold before allocating for them.
  const std::size_t min_task_bytes = 4 + 8 * static_cast<std::size_t>(m);
  if (static_cast<std::size_t>(n) > (in.size() - at) / min_task_bytes + 1) {
    return malformed("task count " + std::to_string(n) +
                     " exceeds the remaining payload");
  }

  Instance instance;
  instance.m = m;
  instance.dag = graph::Dag(n);
  instance.tasks.reserve(static_cast<std::size_t>(n));
  for (std::int32_t j = 0; j < n; ++j) {
    std::string name;
    if (!wire::read_string(in, at, name)) {
      return malformed("truncated name of task " + std::to_string(j));
    }
    std::vector<double> times(static_cast<std::size_t>(m), 0.0);
    for (std::int32_t l = 0; l < m; ++l) {
      if (!wire::read_f64(in, at, times[static_cast<std::size_t>(l)])) {
        return malformed("truncated time table of task " + std::to_string(j));
      }
      if (!(times[static_cast<std::size_t>(l)] > 0.0)) {
        return malformed("task " + std::to_string(j) +
                         " has a non-positive processing time");
      }
    }
    instance.tasks.emplace_back(std::move(times), std::move(name));
  }

  std::uint32_t k = 0;
  if (!wire::read_u32(in, at, k)) return malformed("truncated edge count");
  if (k > (in.size() - at) / 8) {
    return malformed("edge count " + std::to_string(k) +
                     " exceeds the remaining payload");
  }
  for (std::uint32_t e = 0; e < k; ++e) {
    std::uint32_t from = 0, to = 0;
    if (!wire::read_u32(in, at, from) || !wire::read_u32(in, at, to)) {
      return malformed("truncated edge " + std::to_string(e));
    }
    if (from >= static_cast<std::uint32_t>(n) ||
        to >= static_cast<std::uint32_t>(n) || from == to) {
      return malformed("edge " + std::to_string(from) + " -> " +
                       std::to_string(to) + " has a bad endpoint");
    }
    // A duplicate is rejected (add_edge would silently drop it, leaving a
    // decoded instance whose re-encoding differs from the input bytes —
    // the codec stays canonical instead).
    if (instance.dag.has_edge(static_cast<int>(from), static_cast<int>(to))) {
      return malformed("duplicate edge " + std::to_string(from) + " -> " +
                       std::to_string(to));
    }
    instance.dag.add_edge(static_cast<int>(from), static_cast<int>(to));
  }
  if (!graph::is_acyclic(instance.dag)) {
    return malformed("precedence graph has a cycle");
  }
  out = std::move(instance);
  offset = at;
  return core::Status();
}

}  // namespace malsched::model
