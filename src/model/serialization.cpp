#include "model/serialization.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/assert.hpp"

namespace malsched::model {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Next non-empty, non-comment line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << "malsched-instance v1\n";
  os << "m " << instance.m << "\n";
  os << "tasks " << instance.num_tasks() << "\n";
  os << std::setprecision(17);
  for (int j = 0; j < instance.num_tasks(); ++j) {
    const MalleableTask& task = instance.task(j);
    os << "task " << j << ' ' << (task.name().empty() ? "-" : task.name());
    for (int l = 1; l <= instance.m; ++l) os << ' ' << task.processing_time(l);
    os << "\n";
  }
  os << "edges " << instance.dag.num_edges() << "\n";
  for (int v = 0; v < instance.dag.num_nodes(); ++v) {
    for (graph::NodeId w : instance.dag.successors(v)) {
      os << "edge " << v << ' ' << w << "\n";
    }
  }
}

std::optional<Instance> read_instance(std::istream& is, std::string* error) {
  std::string line;
  if (!next_line(is, line) || line.rfind("malsched-instance", 0) != 0) {
    fail(error, "missing 'malsched-instance' header");
    return std::nullopt;
  }

  int m = 0, n = 0;
  {
    if (!next_line(is, line)) {
      fail(error, "missing 'm' line");
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword >> m) || keyword != "m" || m < 1) {
      fail(error, "bad 'm' line: " + line);
      return std::nullopt;
    }
    if (!next_line(is, line)) {
      fail(error, "missing 'tasks' line");
      return std::nullopt;
    }
    std::istringstream ts(line);
    if (!(ts >> keyword >> n) || keyword != "tasks" || n < 0) {
      fail(error, "bad 'tasks' line: " + line);
      return std::nullopt;
    }
  }

  Instance instance;
  instance.m = m;
  instance.dag = graph::Dag(n);
  instance.tasks.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    if (!next_line(is, line)) {
      fail(error, "missing task line " + std::to_string(j));
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string keyword, name;
    int id = -1;
    if (!(ls >> keyword >> id >> name) || keyword != "task" || id != j) {
      fail(error, "bad task line: " + line);
      return std::nullopt;
    }
    std::vector<double> times;
    double t = 0.0;
    while (ls >> t) times.push_back(t);
    if (static_cast<int>(times.size()) != m) {
      fail(error, "task " + std::to_string(j) + " has " +
                      std::to_string(times.size()) + " times, expected " +
                      std::to_string(m));
      return std::nullopt;
    }
    for (double x : times) {
      if (!(x > 0.0)) {
        fail(error, "task " + std::to_string(j) + " has a non-positive time");
        return std::nullopt;
      }
    }
    instance.tasks.emplace_back(std::move(times), name == "-" ? "" : name);
  }

  int k = 0;
  if (!next_line(is, line)) {
    fail(error, "missing 'edges' line");
    return std::nullopt;
  }
  {
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword >> k) || keyword != "edges" || k < 0) {
      fail(error, "bad 'edges' line: " + line);
      return std::nullopt;
    }
  }
  for (int e = 0; e < k; ++e) {
    if (!next_line(is, line)) {
      fail(error, "missing edge line " + std::to_string(e));
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string keyword;
    int from = -1, to = -1;
    if (!(ls >> keyword >> from >> to) || keyword != "edge" || from < 0 ||
        from >= n || to < 0 || to >= n || from == to) {
      fail(error, "bad edge line: " + line);
      return std::nullopt;
    }
    instance.dag.add_edge(from, to);
  }

  if (!graph::is_acyclic(instance.dag)) {
    fail(error, "precedence graph has a cycle");
    return std::nullopt;
  }
  return instance;
}

}  // namespace malsched::model
