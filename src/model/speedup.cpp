#include "model/speedup.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "support/assert.hpp"

namespace malsched::model {

namespace {

MalleableTask from_speedup(double p1, int m, const std::vector<double>& s,
                           std::string name) {
  std::vector<double> times(static_cast<std::size_t>(m));
  for (int l = 1; l <= m; ++l) {
    const double sl = s[static_cast<std::size_t>(l - 1)];
    MALSCHED_ASSERT(sl > 0.0);
    times[static_cast<std::size_t>(l - 1)] = p1 / sl;
  }
  return MalleableTask(std::move(times), std::move(name));
}

}  // namespace

MalleableTask make_power_law_task(double p1, double d, int m, std::string name) {
  MALSCHED_ASSERT(p1 > 0.0 && d > 0.0 && d <= 1.0 && m >= 1);
  std::vector<double> s(static_cast<std::size_t>(m));
  for (int l = 1; l <= m; ++l) s[static_cast<std::size_t>(l - 1)] = std::pow(l, d);
  return from_speedup(p1, m, s, std::move(name));
}

MalleableTask make_amdahl_task(double p1, double parallel_fraction, int m,
                               std::string name) {
  MALSCHED_ASSERT(p1 > 0.0 && parallel_fraction >= 0.0 && parallel_fraction <= 1.0);
  std::vector<double> s(static_cast<std::size_t>(m));
  for (int l = 1; l <= m; ++l) {
    s[static_cast<std::size_t>(l - 1)] =
        1.0 / ((1.0 - parallel_fraction) + parallel_fraction / l);
  }
  return from_speedup(p1, m, s, std::move(name));
}

MalleableTask make_logarithmic_task(double p1, double c, int m, std::string name) {
  MALSCHED_ASSERT(p1 > 0.0 && c >= 0.0);
  std::vector<double> s(static_cast<std::size_t>(m));
  for (int l = 1; l <= m; ++l) {
    s[static_cast<std::size_t>(l - 1)] = 1.0 + c * std::log(static_cast<double>(l));
  }
  return from_speedup(p1, m, s, std::move(name));
}

MalleableTask make_capped_linear_task(double p1, int cap, int m, std::string name) {
  MALSCHED_ASSERT(p1 > 0.0 && cap >= 1);
  std::vector<double> s(static_cast<std::size_t>(m));
  for (int l = 1; l <= m; ++l) {
    s[static_cast<std::size_t>(l - 1)] = static_cast<double>(std::min(l, cap));
  }
  return from_speedup(p1, m, s, std::move(name));
}

MalleableTask make_sequential_task(double p1, int m, std::string name) {
  MALSCHED_ASSERT(p1 > 0.0);
  return MalleableTask(std::vector<double>(static_cast<std::size_t>(m), p1),
                       std::move(name));
}

MalleableTask make_convex_speedup_task(double p1, double delta, int m,
                                       std::string name) {
  MALSCHED_ASSERT(delta > 0.0 && delta < 1.0 / (static_cast<double>(m) * m + 1.0));
  std::vector<double> s(static_cast<std::size_t>(m));
  for (int l = 1; l <= m; ++l) {
    s[static_cast<std::size_t>(l - 1)] =
        1.0 - delta + delta * static_cast<double>(l) * l;
  }
  return from_speedup(p1, m, s, std::move(name));
}

MalleableTask make_random_concave_task(support::Rng& rng, double p1_lo, double p1_hi,
                                       int m, std::string name) {
  MALSCHED_ASSERT(0.0 < p1_lo && p1_lo <= p1_hi);
  // Discrete concavity of s on {0,1,...,m} with s(0) = 0, s(1) = 1 is
  // equivalent to increments delta_l = s(l) - s(l-1) being non-increasing
  // with delta_1 = 1: draw 1 >= delta_2 >= ... >= delta_m >= 0 by sorting
  // uniform draws in decreasing order.
  std::vector<double> inc(static_cast<std::size_t>(std::max(0, m - 1)));
  for (auto& d : inc) d = rng.uniform();
  std::sort(inc.begin(), inc.end(), std::greater<>());
  std::vector<double> s(static_cast<std::size_t>(m));
  s[0] = 1.0;
  for (int l = 2; l <= m; ++l) {
    s[static_cast<std::size_t>(l - 1)] =
        s[static_cast<std::size_t>(l - 2)] + inc[static_cast<std::size_t>(l - 2)];
  }
  return from_speedup(rng.uniform(p1_lo, p1_hi), m, s, std::move(name));
}

MalleableTask make_random_power_law_task(support::Rng& rng, double d_lo, double d_hi,
                                         int m, std::string name) {
  MALSCHED_ASSERT(0.0 < d_lo && d_lo <= d_hi && d_hi <= 1.0);
  const double d = rng.uniform(d_lo, d_hi);
  const double p1 = rng.lognormal(2.0, 0.75);
  return make_power_law_task(p1, d, m, std::move(name));
}

}  // namespace malsched::model
