// The continuous piecewise-linear work function w_j(x) of Section 3.1.
//
// For a task with table p(1..m) the paper interpolates the discrete works
// W(l) = l p(l) linearly between consecutive breakpoints (eq. 6); by
// Theorem 2.2 the result is convex in x, so it equals the max of its affine
// pieces (eq. 8), which is what LP (9) encodes. This class precomputes the
// pieces and provides evaluation plus the fractional processor count
// l*(x) = w(x)/x of eq. (12).
#pragma once

#include <vector>

#include "model/task.hpp"

namespace malsched::model {

/// One affine piece w(x) = slope * x + intercept, valid on
/// [p(l+1), p(l)] for the recorded l.
struct WorkPiece {
  double slope = 0.0;
  double intercept = 0.0;
  int lower_l = 0;  ///< the l of the interval [p(l+1), p(l)]
};

class WorkFunction {
 public:
  explicit WorkFunction(const MalleableTask& task);

  /// w(x) per eq. (6)/(8) for x in [p(m), p(1)] (clamped slightly outside).
  double value(double x) const;

  /// l*(x) = w(x)/x per eq. (12); Lemma 4.1 guarantees l <= l*(x) <= l+1 on
  /// the bracket [p(l+1), p(l)].
  double fractional_processors(double x) const;

  /// Affine pieces (eq. 8); empty when m == 1 or all breakpoints coincide.
  const std::vector<WorkPiece>& pieces() const { return pieces_; }

  /// pieces().size() without constructing a WorkFunction (allocation-free;
  /// same plateau rule as the constructor). Instance::piece_counts memoizes
  /// this for LP fingerprinting and row mapping.
  static int count_pieces(const MalleableTask& task);

  double min_time() const { return min_time_; }  ///< p(m)
  double max_time() const { return max_time_; }  ///< p(1)
  double min_work() const { return min_work_; }  ///< W at the lower envelope start

 private:
  std::vector<WorkPiece> pieces_;
  double min_time_ = 0.0;
  double max_time_ = 0.0;
  double min_work_ = 0.0;
};

}  // namespace malsched::model
