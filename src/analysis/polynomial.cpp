#include "analysis/polynomial.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace malsched::analysis {

Polynomial::Polynomial(std::vector<double> coeffs) : coeffs_(std::move(coeffs)) {
  while (coeffs_.size() > 1 && coeffs_.back() == 0.0) coeffs_.pop_back();
  if (coeffs_.empty()) coeffs_.push_back(0.0);
}

double Polynomial::coefficient(int power) const {
  if (power < 0 || power >= static_cast<int>(coeffs_.size())) return 0.0;
  return coeffs_[static_cast<std::size_t>(power)];
}

double Polynomial::evaluate(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

std::complex<double> Polynomial::evaluate(std::complex<double> x) const {
  std::complex<double> acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coeffs_.size() <= 1) return Polynomial({0.0});
  std::vector<double> d(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    d[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(d));
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i] += coeffs_[i];
  for (std::size_t i = 0; i < other.coeffs_.size(); ++i) out[i] += other.coeffs_[i];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  return *this + other.scaled(-1.0);
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  std::vector<double> out(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0.0) continue;
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::scaled(double factor) const {
  std::vector<double> out = coeffs_;
  for (double& c : out) c *= factor;
  return Polynomial(std::move(out));
}

std::vector<std::complex<double>> Polynomial::complex_roots(int max_iterations,
                                                            double tolerance) const {
  const int n = degree();
  MALSCHED_ASSERT_MSG(n >= 1, "constant polynomial has no roots");
  const double lead = coeffs_.back();
  MALSCHED_ASSERT(lead != 0.0);

  // Monic copy for stable iteration.
  std::vector<std::complex<double>> monic(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) monic[i] = coeffs_[i] / lead;
  auto eval_monic = [&](std::complex<double> x) {
    std::complex<double> acc = 0.0;
    for (std::size_t i = monic.size(); i-- > 0;) acc = acc * x + monic[i];
    return acc;
  };

  // Initial guesses on a circle of radius derived from the Cauchy bound,
  // with an irrational angle offset to avoid symmetric stalls.
  double radius = 0.0;
  for (int i = 0; i < n; ++i) radius = std::max(radius, std::abs(monic[static_cast<std::size_t>(i)]));
  radius = 1.0 + radius;
  std::vector<std::complex<double>> roots(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double angle = 2.0 * M_PI * (k + 0.25) / n + 0.4;
    roots[static_cast<std::size_t>(k)] = std::polar(radius * 0.7, angle);
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    double worst_update = 0.0;
    for (int k = 0; k < n; ++k) {
      std::complex<double> denom = 1.0;
      for (int j = 0; j < n; ++j) {
        if (j != k) denom *= roots[static_cast<std::size_t>(k)] - roots[static_cast<std::size_t>(j)];
      }
      if (std::abs(denom) < 1e-300) continue;
      const std::complex<double> delta =
          eval_monic(roots[static_cast<std::size_t>(k)]) / denom;
      roots[static_cast<std::size_t>(k)] -= delta;
      worst_update = std::max(worst_update, std::abs(delta));
    }
    if (worst_update < tolerance) break;
  }
  return roots;
}

std::vector<double> Polynomial::real_roots_in(double lo, double hi,
                                              double tolerance) const {
  MALSCHED_ASSERT(lo <= hi);
  std::vector<double> found;
  const Polynomial deriv = derivative();
  for (const auto& root : complex_roots()) {
    if (std::abs(root.imag()) > 1e-7) continue;
    double x = root.real();
    // Newton polish on the real axis.
    for (int it = 0; it < 60; ++it) {
      const double f = evaluate(x);
      const double df = deriv.evaluate(x);
      if (std::abs(df) < 1e-300) break;
      const double step = f / df;
      x -= step;
      if (std::abs(step) < tolerance) break;
    }
    if (x < lo - 1e-9 || x > hi + 1e-9) continue;
    x = std::clamp(x, lo, hi);
    bool duplicate = false;
    for (double existing : found) {
      if (std::abs(existing - x) < 1e-8) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) found.push_back(x);
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace malsched::analysis
