// Dense univariate polynomial arithmetic and root finding.
//
// Built for Section 4.3 of the paper: the optimal rounding parameter rho*
// is a root of a degree-6 polynomial with no analytic solution, so the
// asymptotic analysis needs a numerical root finder. Durand-Kerner iterates
// on all complex roots simultaneously; real roots in an interval are then
// extracted and polished with bisection+Newton.
#pragma once

#include <complex>
#include <vector>

namespace malsched::analysis {

class Polynomial {
 public:
  Polynomial() = default;

  /// coeffs[i] is the coefficient of x^i; trailing zeros are trimmed.
  explicit Polynomial(std::vector<double> coeffs);

  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<double>& coefficients() const { return coeffs_; }
  double coefficient(int power) const;

  double evaluate(double x) const;
  std::complex<double> evaluate(std::complex<double> x) const;

  Polynomial derivative() const;
  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial scaled(double factor) const;

  /// All complex roots via Durand-Kerner; requires degree >= 1.
  std::vector<std::complex<double>> complex_roots(int max_iterations = 500,
                                                  double tolerance = 1e-13) const;

  /// Real roots inside [lo, hi], deduplicated and Newton-polished.
  std::vector<double> real_roots_in(double lo, double hi,
                                    double tolerance = 1e-12) const;

 private:
  std::vector<double> coeffs_;  // coeffs_[i] * x^i
};

}  // namespace malsched::analysis
