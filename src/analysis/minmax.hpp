// The min-max nonlinear program (17)/(18) of Section 4 and the paper's
// parameter choices.
//
// Lemma 4.5 bounds the approximation ratio of the two-phase algorithm by
//
//   min_{mu, rho}  max_{x1, x2 >= 0}  [2m/(2-rho) + (m-mu) x1
//                                      + (m-2mu+1) x2] / (m-mu+1)
//   s.t.  (1+rho)/2 * x1 + min{mu/m, (1+rho)/2} * x2 <= 1,
//
// where x_i = |T_i|/C*_max are the normalized lengths of the time-slot
// classes of the final schedule. For fixed (m, mu, rho) the inner max is a
// 2-variable LP attained at a vertex, giving the closed-form evaluator
// ratio_bound(). Minimizing it reproduces Table 4 (grid search) and the
// paper's fixed choice rho = 0.26 with mu from eq. (20) reproduces Table 2.
#pragma once

#include "support/thread_pool.hpp"

namespace malsched::analysis {

/// Inner max of (17) for fixed parameters; requires 1 <= mu <= (m+1)/2.
double ratio_bound(int m, int mu, double rho);

/// Lemma 4.8: continuous minimizer mu*(rho) of the case rho > 2 mu/m - 1:
/// mu* = [(2+rho) m - sqrt((rho^2+2rho+2) m^2 - 2(1+rho) m)] / 2.
double mu_star(int m, double rho);

/// The paper's fixed rounding parameter (eq. 19).
inline constexpr double kPaperRho = 0.26;

struct ParamChoice {
  int mu = 1;
  double rho = 0.0;
  double ratio = 0.0;
};

/// The algorithm's published parameters (Section 4.2): special cases
/// m = 2, 3, 4; rho = 0.26 and mu = better of floor/ceil of eq. (20)
/// otherwise. Reproduces every row of Table 2.
ParamChoice paper_parameters(int m);

/// Numerical optimum of (17) on a rho grid of step `delta_rho` over all
/// integer mu (Section 4.3). Reproduces Table 4 with delta_rho = 1e-4.
ParamChoice grid_search(int m, double delta_rho = 1e-4);

/// Same, with the rho grid split across a thread pool.
ParamChoice grid_search_parallel(int m, double delta_rho,
                                 support::ThreadPool& pool);

/// Lemma 4.7: optimal value of (17) restricted to rho <= 2 mu/m - 1.
double lemma47_ratio(int m);

/// Lemma 4.9 closed-form bound for rho = 0.26 (general-m expression).
double lemma49_ratio(int m);

/// Theorem 4.1: the paper's final per-m ratio guarantee.
double theorem41_ratio(int m);

/// Corollary 4.1: the uniform bound 100/63 + 100(sqrt(6469)+13)/5481
/// ~= 3.291919.
double corollary_ratio();

}  // namespace malsched::analysis
