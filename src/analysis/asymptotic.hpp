// Section 4.3: asymptotic behaviour of the approximation ratio.
//
// Setting the rho-derivative of the bound to zero leads (after clearing the
// square root) to equation (21):
//
//   m^2 (1+m) (1+rho)^2 * sum_{i=0}^{6} c_i rho^i = 0
//
// with m-dependent coefficients c_i. As m -> infinity the degree-6 factor
// tends to rho^6 + 6rho^5 + 3rho^4 + 14rho^3 + 21rho^2 + 24rho - 8, whose
// unique root in (0,1) is rho* ~= 0.261917; then mu*/m -> 0.325907 and the
// ratio tends to 3.291913. The paper fixes rho-hat = 0.26 as a close
// rational approximation, giving the headline 3.291919.
#pragma once

#include "analysis/polynomial.hpp"

namespace malsched::analysis {

/// The limiting degree-6 polynomial of eq. (21) (coefficients of rho^0..6:
/// -8, 24, 21, 14, 3, 6, 1).
Polynomial limiting_rho_polynomial();

/// The finite-m coefficients c_0..c_6 of eq. (21).
std::vector<double> eq21_coefficients(int m);

/// A_1, A_2, A_3 of the pre-squared optimality equation
/// A_1 Delta + A_2 sqrt(Delta) + A_3 = 0 (polynomials in rho for fixed m),
/// and Delta(rho) = (rho^2+2rho+2) m^2 - 2(1+rho) m. Exposed so tests can
/// verify the algebraic identity (A_1 Delta + A_3)^2 - A_2^2 Delta =
/// m^2 (1+m) (1+rho)^2 sum c_i rho^i claimed by the paper.
Polynomial eq21_a1(int m);
Polynomial eq21_a2(int m);
Polynomial eq21_a3(int m);
Polynomial eq21_delta(int m);

/// rho* ~= 0.261917: the unique root of the limiting polynomial in (0, 1).
double asymptotic_rho_star();

/// mu*/m in the limit: ((2+rho*) - sqrt(rho*^2 + 2 rho* + 2)) / 2
/// ~= 0.325907.
double asymptotic_mu_fraction();

/// The asymptotic best ratio 3.291913 obtained from rho*.
double asymptotic_ratio();

/// The m -> infinity ratio for an arbitrary fixed rho and the continuous
/// mu = beta m minimizer; used to compare 0.26 vs rho*.
double limiting_ratio_for_rho(double rho);

}  // namespace malsched::analysis
