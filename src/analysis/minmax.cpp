#include "analysis/minmax.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "support/assert.hpp"

namespace malsched::analysis {

double ratio_bound(int m, int mu, double rho) {
  MALSCHED_ASSERT(m >= 1);
  MALSCHED_ASSERT(mu >= 1 && 2 * mu <= m + 1);
  MALSCHED_ASSERT(rho >= 0.0 && rho <= 1.0);
  // Vertices of {(x1,x2) >= 0 : a x1 + b x2 <= 1} are (0,0), (1/a,0), (0,1/b).
  const double a = (1.0 + rho) / 2.0;
  const double b = std::min(static_cast<double>(mu) / m, (1.0 + rho) / 2.0);
  const double coeff_x1 = static_cast<double>(m - mu);
  const double coeff_x2 = static_cast<double>(m - 2 * mu + 1);
  const double inner =
      std::max({0.0, coeff_x1 / a, coeff_x2 / b});
  return (2.0 * m / (2.0 - rho) + inner) / (m - mu + 1);
}

double mu_star(int m, double rho) {
  const double md = m;
  const double disc = (rho * rho + 2.0 * rho + 2.0) * md * md - 2.0 * (1.0 + rho) * md;
  MALSCHED_ASSERT(disc >= 0.0);
  return ((2.0 + rho) * md - std::sqrt(disc)) / 2.0;
}

namespace {

int max_mu(int m) { return (m + 1) / 2; }

/// Better of floor/ceil of the continuous minimizer, clamped to range.
ParamChoice round_mu_choice(int m, double rho) {
  const double target = mu_star(m, rho);
  const int lo = std::clamp(static_cast<int>(std::floor(target)), 1, max_mu(m));
  const int hi = std::clamp(static_cast<int>(std::ceil(target)), 1, max_mu(m));
  ParamChoice best{lo, rho, ratio_bound(m, lo, rho)};
  if (hi != lo) {
    const double r = ratio_bound(m, hi, rho);
    if (r < best.ratio) best = ParamChoice{hi, rho, r};
  }
  return best;
}

}  // namespace

ParamChoice paper_parameters(int m) {
  MALSCHED_ASSERT(m >= 1);
  switch (m) {
    case 1:
      // Degenerate single-processor case: every allotment is 1.
      return ParamChoice{1, 0.0, 1.0};
    case 2:
      return ParamChoice{1, 0.0, ratio_bound(2, 1, 0.0)};
    case 3: {
      // Optimal rho for m = 3 (case rho <= 2 mu/m - 1): minimizes
      // 3/(2-rho) + 1/(1+rho), giving rho = (2 - sqrt(3))/(1 + sqrt(3)).
      const double rho = (2.0 - std::sqrt(3.0)) / (1.0 + std::sqrt(3.0));
      return ParamChoice{2, rho, ratio_bound(3, 2, rho)};
    }
    case 4:
      return ParamChoice{2, 0.0, ratio_bound(4, 2, 0.0)};
    default: {
      // m >= 5: rho-hat = 0.26 and mu-hat per eq. (20), rounded to the
      // better neighbour (the paper keeps rho = 0.26 for m = 5 too, see the
      // note below Corollary 4.1).
      return round_mu_choice(m, kPaperRho);
    }
  }
}

ParamChoice grid_search(int m, double delta_rho) {
  MALSCHED_ASSERT(delta_rho > 0.0);
  ParamChoice best{1, 0.0, ratio_bound(m, 1, 0.0)};
  const int steps = static_cast<int>(std::round(1.0 / delta_rho));
  for (int mu = 1; mu <= max_mu(m); ++mu) {
    for (int s = 0; s <= steps; ++s) {
      const double rho = std::min(1.0, s * delta_rho);
      const double r = ratio_bound(m, mu, rho);
      if (r < best.ratio - 1e-15) best = ParamChoice{mu, rho, r};
    }
  }
  return best;
}

ParamChoice grid_search_parallel(int m, double delta_rho,
                                 support::ThreadPool& pool) {
  const int steps = static_cast<int>(std::round(1.0 / delta_rho));
  const int mus = max_mu(m);
  std::vector<ParamChoice> per_mu(static_cast<std::size_t>(mus));
  pool.parallel_for(0, static_cast<std::size_t>(mus), [&](std::size_t idx) {
    const int mu = static_cast<int>(idx) + 1;
    ParamChoice best{mu, 0.0, ratio_bound(m, mu, 0.0)};
    for (int s = 1; s <= steps; ++s) {
      const double rho = std::min(1.0, s * delta_rho);
      const double r = ratio_bound(m, mu, rho);
      if (r < best.ratio - 1e-15) best = ParamChoice{mu, rho, r};
    }
    per_mu[idx] = best;
  });
  ParamChoice best = per_mu.front();
  for (const auto& candidate : per_mu) {
    if (candidate.ratio < best.ratio - 1e-15) best = candidate;
  }
  return best;
}

double lemma47_ratio(int m) {
  MALSCHED_ASSERT(m >= 2);
  if (m == 3) return 2.0 * (2.0 + std::sqrt(3.0)) / 3.0;
  if (m == 5) return 2.0 * (7.0 + 2.0 * std::sqrt(10.0)) / 9.0;
  if (m >= 7 && m % 2 == 1) {
    const double md = m;
    return 2.0 * md * (4.0 * md * md - md + 1.0) /
           ((md + 1.0) * (md + 1.0) * (2.0 * md - 1.0));
  }
  return 4.0 * static_cast<double>(m) / (m + 2);
}

double lemma49_ratio(int m) {
  MALSCHED_ASSERT(m >= 2);
  const double md = m;
  return 100.0 / 63.0 +
         (100.0 / 345303.0) * (63.0 * md - 87.0) *
             (std::sqrt(6469.0 * md * md - 6300.0 * md) + 13.0 * md) /
             (md * md - md);
}

double theorem41_ratio(int m) {
  MALSCHED_ASSERT(m >= 2);
  switch (m) {
    case 2:
      return 2.0;
    case 3:
      return 2.0 * (2.0 + std::sqrt(3.0)) / 3.0;
    case 4:
      return 8.0 / 3.0;
    case 5:
      return 2.0 * (7.0 + 2.0 * std::sqrt(10.0)) / 9.0;
    default:
      return lemma49_ratio(m);
  }
}

double corollary_ratio() {
  return 100.0 / 63.0 + 100.0 * (std::sqrt(6469.0) + 13.0) / 5481.0;
}

}  // namespace malsched::analysis
