#include "analysis/ltw.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace malsched::analysis {

double ltw_ratio_bound(int m, int mu) {
  MALSCHED_ASSERT(m >= 1 && mu >= 1 && mu <= m);
  const double md = m;
  const double inner = std::max(
      {0.0, 2.0 * (md - mu), 2.0 * md * (md - 2.0 * mu + 1.0) / mu});
  return (2.0 * md + inner) / (md - mu + 1.0);
}

ParamChoice ltw_parameters(int m) {
  ParamChoice best{1, 0.5, ltw_ratio_bound(m, 1)};
  for (int mu = 2; mu <= m; ++mu) {
    const double r = ltw_ratio_bound(m, mu);
    if (r < best.ratio - 1e-15) best = ParamChoice{mu, 0.5, r};
  }
  return best;
}

double ltw_asymptotic_ratio() { return 3.0 + std::sqrt(5.0); }

}  // namespace malsched::analysis
