#include "analysis/asymptotic.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace malsched::analysis {

Polynomial limiting_rho_polynomial() {
  return Polynomial({-8.0, 24.0, 21.0, 14.0, 3.0, 6.0, 1.0});
}

std::vector<double> eq21_coefficients(int m) {
  const double md = m;
  return {
      -8.0 * (md - 1.0) * (md - 1.0) * (md - 2.0),
      8.0 * (md - 1.0) * (md - 2.0) * (3.0 * md - 2.0),
      21.0 * md * md * md - 59.0 * md * md + 16.0 * md + 24.0,
      2.0 * (md + 1.0) * (7.0 * md * md - 7.0 * md - 4.0),
      3.0 * md * md * md - 7.0 * md * md + 15.0 * md + 1.0,
      2.0 * md * (3.0 * md * md - 4.0 * md - 1.0),
      md * md * (md + 1.0),
  };
}

Polynomial eq21_a1(int m) {
  const double md = m;
  return Polynomial({md - 4.0, 6.0 * md + 4.0, -3.0 * md - 1.0, md});
}

Polynomial eq21_a2(int m) {
  const double md = m;
  return Polynomial({-2.0 * md + 2.0, 2.0 * md + 8.0, -3.0 * md - 2.0, md + 1.0, -md})
      .scaled(md);
}

Polynomial eq21_a3(int m) {
  const double md = m;
  return Polynomial({-2.0 * md * md + 6.0 * md - 4.0, -5.0 * md * md + 7.0 * md,
                     -3.0 * md * md - 3.0 * md + 3.0, md * md - 3.0 * md - 1.0,
                     md * md + md})
      .scaled(md);
}

Polynomial eq21_delta(int m) {
  const double md = m;
  return Polynomial({2.0 * md * md - 2.0 * md, 2.0 * md * md - 2.0 * md, md * md});
}

double asymptotic_rho_star() {
  const auto roots = limiting_rho_polynomial().real_roots_in(0.0, 1.0);
  MALSCHED_ASSERT_MSG(roots.size() == 1,
                      "expected a unique root of the limiting polynomial in (0,1)");
  return roots.front();
}

double asymptotic_mu_fraction() {
  const double rho = asymptotic_rho_star();
  return ((2.0 + rho) - std::sqrt(rho * rho + 2.0 * rho + 2.0)) / 2.0;
}

double limiting_ratio_for_rho(double rho) {
  MALSCHED_ASSERT(rho >= 0.0 && rho <= 1.0);
  const double beta = ((2.0 + rho) - std::sqrt(rho * rho + 2.0 * rho + 2.0)) / 2.0;
  const double b = std::min(beta, (1.0 + rho) / 2.0);
  const double inner = std::max((1.0 - beta) * 2.0 / (1.0 + rho), (1.0 - 2.0 * beta) / b);
  return (2.0 / (2.0 - rho) + std::max(inner, 0.0)) / (1.0 - beta);
}

double asymptotic_ratio() { return limiting_ratio_for_rho(asymptotic_rho_star()); }

}  // namespace malsched::analysis
