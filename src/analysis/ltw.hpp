// Theoretical ratio bound of the Lepere-Trystram-Woeginger algorithm [18]
// under Assumptions 1 + 2' (the comparison baseline of the paper's Table 3).
//
// Their two-phase algorithm rounds the fractional allotment so that both the
// critical path and the total work at most double (rho = 1/2 in the
// time-cost-tradeoff rounding), then runs the same mu-capped list scheduler.
// The resulting min-max bound specializes the paper's (17) with duration
// stretch 2 and work stretch 2:
//
//   r(m, mu) = [2m + max{2(m - mu), 2m(m - 2mu + 1)/mu, 0}] / (m - mu + 1),
//
// minimized over mu. This closed form reproduces all 32 rows of Table 3
// (min over m of 4.0 at m = 2..4, 3 + sqrt(5) ~= 5.236 asymptotically).
#pragma once

#include "analysis/minmax.hpp"

namespace malsched::analysis {

/// LTW bound for a fixed cap mu (1 <= mu <= m).
double ltw_ratio_bound(int m, int mu);

/// Best mu and value (Table 3 row).
ParamChoice ltw_parameters(int m);

/// The LTW asymptotic ratio 3 + sqrt(5).
double ltw_asymptotic_ratio();

}  // namespace malsched::analysis
