#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace malsched::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  MALSCHED_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  MALSCHED_ASSERT_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::num(int value) { return std::to_string(value); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace malsched::support
