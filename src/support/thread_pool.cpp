#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace malsched::support {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

int ThreadPool::worker_index() { return tls_worker_index; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::try_run_pending_task() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();  // packaged_task routes exceptions into the future
  return true;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = static_cast<int>(index);
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace malsched::support
