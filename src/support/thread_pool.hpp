// Minimal fixed-size thread pool with a parallel-for helper.
//
// Used to parallelize embarrassingly parallel sweeps (the Table 4 grid
// search over (mu, rho) and the empirical instance suites). On a single-core
// host the pool degrades to one worker and adds negligible overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace malsched::support {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Index of the calling thread within its owning pool: 0..size()-1 when
  /// called from a worker (of whichever pool spawned the thread), -1 from
  /// any other thread. Lets submitted tasks pick per-worker state (e.g. the
  /// batch scheduler's per-worker warm-start caches) without locking.
  static int worker_index();

  /// Enqueue an arbitrary task; the returned future reports completion and
  /// propagates exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Task handoff: pops one queued task (if any) and runs it on the CALLING
  /// thread, returning whether one ran. Lets a thread that would otherwise
  /// block on pool work help execute it instead — SchedulerService::wait and
  /// ::drain use it so a caller stuck behind a deep queue steals work rather
  /// than sleeping, which also keeps a single-worker pool live-locked-free
  /// when the waiter is the only idle thread. Exceptions propagate through
  /// the task's future exactly as if a worker had run it.
  bool try_run_pending_task();

  /// Run body(i) for i in [begin, end), partitioned into contiguous chunks.
  /// Blocks until every iteration has finished. Exceptions from the body are
  /// rethrown (the first one encountered).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace malsched::support
