// Plain-text table formatting for the benchmark harness.
//
// Every bench binary regenerating a table of the paper prints through
// TextTable so the output lines up with the published rows and is easy to
// diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace malsched::support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double value, int precision = 4);
  static std::string num(int value);

  /// Render with column alignment; writes a header rule.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace malsched::support
