// Lightweight always-on assertion macro.
//
// Unlike <cassert>, MALSCHED_ASSERT stays active in release builds: the
// scheduler's correctness arguments (feasibility of the LIST schedule,
// Lemma 4.1 bracketing of the fractional allotment, ...) are cheap to check
// and a silent violation would invalidate every downstream measurement.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace malsched {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "malsched assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace malsched

#define MALSCHED_ASSERT(expr)                                            \
  do {                                                                   \
    if (!(expr)) ::malsched::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MALSCHED_ASSERT_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr)) ::malsched::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (false)
