#include "support/rng.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace malsched::support {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MALSCHED_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  MALSCHED_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return lo + static_cast<int>(v % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Rng::exponential(double lambda) {
  MALSCHED_ASSERT(lambda > 0.0);
  return -std::log(1.0 - uniform()) / lambda;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MALSCHED_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MALSCHED_ASSERT(w >= 0.0);
    total += w;
  }
  MALSCHED_ASSERT(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() {
  // Derive a decorrelated child seed from two raw draws.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 29) ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace malsched::support
