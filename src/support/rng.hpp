// Deterministic random number generation.
//
// All randomness in the library (instance generators, property tests,
// benchmark workloads) flows through Rng so that every experiment is
// reproducible from a printed seed. The engine is xoshiro256** seeded via
// SplitMix64, following the reference constructions by Blackman & Vigna.
#pragma once

#include <cstdint>
#include <vector>

namespace malsched::support {

/// SplitMix64 step; used to expand a single 64-bit seed into engine state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo random engine with helper distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Log-normal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda.
  double exponential(double lambda);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// A fresh, independent generator derived from this one (for fan-out to
  /// worker threads without sharing state).
  Rng split();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace malsched::support
