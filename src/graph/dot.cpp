#include "graph/dot.hpp"

#include <ostream>

#include "support/assert.hpp"

namespace malsched::graph {

void write_dot(std::ostream& os, const Dag& dag,
               const std::vector<std::string>& labels) {
  MALSCHED_ASSERT(labels.empty() ||
                  labels.size() == static_cast<std::size_t>(dag.num_nodes()));
  os << "digraph precedence {\n  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    os << "  n" << v;
    if (!labels.empty()) os << " [label=\"" << labels[static_cast<std::size_t>(v)] << "\"]";
    os << ";\n";
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (NodeId w : dag.successors(v)) {
      os << "  n" << v << " -> n" << w << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace malsched::graph
