#include "graph/dot.hpp"

#include <ostream>

#include "support/assert.hpp"

namespace malsched::graph {

void write_dot(std::ostream& os, const Dag& dag,
               const std::vector<std::string>& labels) {
  MALSCHED_ASSERT(labels.empty() ||
                  labels.size() == static_cast<std::size_t>(dag.num_nodes()));
  os << "digraph precedence {\n  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    os << "  n" << v;
    if (!labels.empty()) os << " [label=\"" << labels[static_cast<std::size_t>(v)] << "\"]";
    os << ";\n";
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (NodeId w : dag.successors(v)) {
      os << "  n" << v << " -> n" << w << ";\n";
    }
  }
  os << "}\n";
}

void write_dot_styled(std::ostream& os, const Dag& dag,
                      const std::vector<DotNodeStyle>& styles) {
  MALSCHED_ASSERT(styles.empty() ||
                  styles.size() == static_cast<std::size_t>(dag.num_nodes()));
  os << "digraph precedence {\n  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    os << "  n" << v;
    if (!styles.empty()) {
      const DotNodeStyle& style = styles[static_cast<std::size_t>(v)];
      os << " [";
      bool first = true;
      if (!style.label.empty()) {
        os << "label=\"" << style.label << "\"";
        first = false;
      }
      if (!style.fillcolor.empty()) {
        if (!first) os << ", ";
        os << "style=filled, fillcolor=\"" << style.fillcolor << "\"";
      }
      os << "]";
    }
    os << ";\n";
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (NodeId w : dag.successors(v)) {
      os << "  n" << v << " -> n" << w << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace malsched::graph
