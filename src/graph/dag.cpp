#include "graph/dag.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace malsched::graph {

Dag::Dag(int num_nodes) {
  MALSCHED_ASSERT(num_nodes >= 0);
  successors_.resize(static_cast<std::size_t>(num_nodes));
  predecessors_.resize(static_cast<std::size_t>(num_nodes));
}

NodeId Dag::add_node() {
  successors_.emplace_back();
  predecessors_.emplace_back();
  ++revision_;
  return num_nodes() - 1;
}

void Dag::add_edge(NodeId from, NodeId to) {
  MALSCHED_ASSERT(from >= 0 && from < num_nodes());
  MALSCHED_ASSERT(to >= 0 && to < num_nodes());
  MALSCHED_ASSERT_MSG(from != to, "self-loop in precedence graph");
  if (has_edge(from, to)) return;
  successors_[static_cast<std::size_t>(from)].push_back(to);
  predecessors_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
  ++revision_;
}

void Dag::add_edge_unique(NodeId from, NodeId to) {
  MALSCHED_ASSERT(from >= 0 && from < num_nodes());
  MALSCHED_ASSERT(to >= 0 && to < num_nodes());
  MALSCHED_ASSERT_MSG(from != to, "self-loop in precedence graph");
  successors_[static_cast<std::size_t>(from)].push_back(to);
  predecessors_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
  ++revision_;
}

void Dag::filter_edges(const std::function<bool(NodeId, NodeId)>& keep) {
  std::vector<char> flags;
  std::size_t total = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    auto& succ = successors_[static_cast<std::size_t>(v)];
    flags.resize(succ.size());
    // Query first (the predicate may read successors(v)), compact after.
    for (std::size_t i = 0; i < succ.size(); ++i) {
      flags[i] = keep(v, succ[i]) ? 1 : 0;
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < succ.size(); ++i) {
      if (flags[i]) succ[kept++] = succ[i];
    }
    succ.resize(kept);
    total += kept;
  }
  for (auto& preds : predecessors_) preds.clear();
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId w : successors_[static_cast<std::size_t>(v)]) {
      predecessors_[static_cast<std::size_t>(w)].push_back(v);
    }
  }
  num_edges_ = total;
  ++revision_;
}

bool Dag::has_edge(NodeId from, NodeId to) const {
  const auto& succ = successors_[static_cast<std::size_t>(from)];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (predecessors(v).empty()) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (successors(v).empty()) out.push_back(v);
  }
  return out;
}

}  // namespace malsched::graph
