#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace malsched::graph {

std::optional<std::vector<NodeId>> topological_order(const Dag& dag) {
  const int n = dag.num_nodes();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    indegree[static_cast<std::size_t>(v)] =
        static_cast<int>(dag.predecessors(v).size());
  }
  std::queue<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (NodeId w : dag.successors(v)) {
      if (--indegree[static_cast<std::size_t>(w)] == 0) ready.push(w);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

bool is_acyclic(const Dag& dag) { return topological_order(dag).has_value(); }

std::vector<double> longest_path_to(const Dag& dag,
                                    const std::vector<double>& node_weights) {
  MALSCHED_ASSERT(node_weights.size() == static_cast<std::size_t>(dag.num_nodes()));
  const auto order = topological_order(dag);
  MALSCHED_ASSERT_MSG(order.has_value(), "longest path requires a DAG");
  std::vector<double> dist(node_weights.size(), 0.0);
  for (NodeId v : *order) {
    const auto vu = static_cast<std::size_t>(v);
    double best = 0.0;
    for (NodeId p : dag.predecessors(v)) {
      best = std::max(best, dist[static_cast<std::size_t>(p)]);
    }
    dist[vu] = best + node_weights[vu];
  }
  return dist;
}

double longest_path(const Dag& dag, const std::vector<double>& node_weights) {
  const auto dist = longest_path_to(dag, node_weights);
  double best = 0.0;
  for (double d : dist) best = std::max(best, d);
  return best;
}

std::vector<NodeId> critical_path_nodes(const Dag& dag,
                                        const std::vector<double>& node_weights) {
  const auto dist = longest_path_to(dag, node_weights);
  if (dist.empty()) return {};
  NodeId tail = 0;
  for (NodeId v = 1; v < dag.num_nodes(); ++v) {
    if (dist[static_cast<std::size_t>(v)] > dist[static_cast<std::size_t>(tail)]) tail = v;
  }
  std::vector<NodeId> path{tail};
  NodeId current = tail;
  // Walk backwards, always via the predecessor with the largest ending
  // distance; by the DP recurrence that predecessor lies on a longest path.
  while (!dag.predecessors(current).empty()) {
    NodeId chosen = dag.predecessors(current).front();
    for (NodeId p : dag.predecessors(current)) {
      if (dist[static_cast<std::size_t>(p)] > dist[static_cast<std::size_t>(chosen)]) {
        chosen = p;
      }
    }
    path.push_back(chosen);
    current = chosen;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ReachabilityBitset transitive_closure_bitset(const Dag& dag) {
  const int n = dag.num_nodes();
  ReachabilityBitset reach(n);
  const auto order = topological_order(dag);
  MALSCHED_ASSERT_MSG(order.has_value(), "transitive closure requires a DAG");
  // Process in reverse topological order: row(v) = union over successors w
  // of ({w} | row(w)), each union a single word sweep.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    for (NodeId w : dag.successors(v)) {
      reach.set(v, w);
      reach.or_row(v, w);
    }
  }
  return reach;
}

std::vector<std::vector<bool>> transitive_closure(const Dag& dag) {
  const int n = dag.num_nodes();
  const ReachabilityBitset reach = transitive_closure_bitset(dag);
  std::vector<std::vector<bool>> out(
      static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n), false));
  for (NodeId v = 0; v < n; ++v) {
    auto& row = out[static_cast<std::size_t>(v)];
    for (NodeId w = 0; w < n; ++w) {
      if (reach.reaches(v, w)) row[static_cast<std::size_t>(w)] = true;
    }
  }
  return out;
}

namespace {

/// Per-node redundancy oracle of the transitive reduction: load(v) unions
/// the reachability rows of v's successors; edge (v, w) is then redundant
/// iff w's bit is set (some successor u != w reaches w; u = w contributes
/// nothing since a DAG node never reaches itself). Shared by the copying
/// and in-place reductions so the word-sweep logic lives once.
class IndirectReach {
 public:
  IndirectReach(const Dag& dag, const ReachabilityBitset& reach)
      : dag_(dag), reach_(reach), union_(reach.words_per_row(), 0) {}

  void load(NodeId v) {
    std::fill(union_.begin(), union_.end(), 0);
    for (NodeId u : dag_.successors(v)) {
      const std::uint64_t* row = reach_.row(u);
      for (std::size_t k = 0; k < union_.size(); ++k) union_[k] |= row[k];
    }
  }

  bool redundant(NodeId w) const {
    return (union_[static_cast<std::size_t>(w) >> 6] >>
            (static_cast<std::size_t>(w) & 63)) &
           1u;
  }

 private:
  const Dag& dag_;
  const ReachabilityBitset& reach_;
  std::vector<std::uint64_t> union_;
};

}  // namespace

Dag transitive_reduction(const Dag& dag) {
  const ReachabilityBitset reach = transitive_closure_bitset(dag);
  IndirectReach indirect(dag, reach);
  Dag reduced(dag.num_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.successors(v).empty()) continue;
    indirect.load(v);
    for (NodeId w : dag.successors(v)) {
      if (!indirect.redundant(w)) reduced.add_edge(v, w);
    }
  }
  return reduced;
}

void transitive_reduction_inplace(Dag& dag) {
  const ReachabilityBitset reach = transitive_closure_bitset(dag);
  IndirectReach indirect(dag, reach);
  NodeId last_v = -1;
  dag.filter_edges([&](NodeId v, NodeId w) {
    if (v != last_v) {
      last_v = v;
      indirect.load(v);
    }
    return !indirect.redundant(w);
  });
}

int height(const Dag& dag) {
  if (dag.num_nodes() == 0) return 0;
  const std::vector<double> unit(static_cast<std::size_t>(dag.num_nodes()), 1.0);
  return static_cast<int>(longest_path(dag, unit) + 0.5);
}

}  // namespace malsched::graph
