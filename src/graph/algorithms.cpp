#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace malsched::graph {

std::optional<std::vector<NodeId>> topological_order(const Dag& dag) {
  const int n = dag.num_nodes();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    indegree[static_cast<std::size_t>(v)] =
        static_cast<int>(dag.predecessors(v).size());
  }
  std::queue<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (NodeId w : dag.successors(v)) {
      if (--indegree[static_cast<std::size_t>(w)] == 0) ready.push(w);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

bool is_acyclic(const Dag& dag) { return topological_order(dag).has_value(); }

std::vector<double> longest_path_to(const Dag& dag,
                                    const std::vector<double>& node_weights) {
  MALSCHED_ASSERT(node_weights.size() == static_cast<std::size_t>(dag.num_nodes()));
  const auto order = topological_order(dag);
  MALSCHED_ASSERT_MSG(order.has_value(), "longest path requires a DAG");
  std::vector<double> dist(node_weights.size(), 0.0);
  for (NodeId v : *order) {
    const auto vu = static_cast<std::size_t>(v);
    double best = 0.0;
    for (NodeId p : dag.predecessors(v)) {
      best = std::max(best, dist[static_cast<std::size_t>(p)]);
    }
    dist[vu] = best + node_weights[vu];
  }
  return dist;
}

double longest_path(const Dag& dag, const std::vector<double>& node_weights) {
  const auto dist = longest_path_to(dag, node_weights);
  double best = 0.0;
  for (double d : dist) best = std::max(best, d);
  return best;
}

std::vector<NodeId> critical_path_nodes(const Dag& dag,
                                        const std::vector<double>& node_weights) {
  const auto dist = longest_path_to(dag, node_weights);
  if (dist.empty()) return {};
  NodeId tail = 0;
  for (NodeId v = 1; v < dag.num_nodes(); ++v) {
    if (dist[static_cast<std::size_t>(v)] > dist[static_cast<std::size_t>(tail)]) tail = v;
  }
  std::vector<NodeId> path{tail};
  NodeId current = tail;
  // Walk backwards, always via the predecessor with the largest ending
  // distance; by the DP recurrence that predecessor lies on a longest path.
  while (!dag.predecessors(current).empty()) {
    NodeId chosen = dag.predecessors(current).front();
    for (NodeId p : dag.predecessors(current)) {
      if (dist[static_cast<std::size_t>(p)] > dist[static_cast<std::size_t>(chosen)]) {
        chosen = p;
      }
    }
    path.push_back(chosen);
    current = chosen;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<bool>> transitive_closure(const Dag& dag) {
  const int n = dag.num_nodes();
  std::vector<std::vector<bool>> reach(
      static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n), false));
  const auto order = topological_order(dag);
  MALSCHED_ASSERT(order.has_value());
  // Process in reverse topological order: reach[v] = union of successors.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    auto& row = reach[static_cast<std::size_t>(v)];
    for (NodeId w : dag.successors(v)) {
      row[static_cast<std::size_t>(w)] = true;
      const auto& wrow = reach[static_cast<std::size_t>(w)];
      for (int k = 0; k < n; ++k) {
        if (wrow[static_cast<std::size_t>(k)]) row[static_cast<std::size_t>(k)] = true;
      }
    }
  }
  return reach;
}

Dag transitive_reduction(const Dag& dag) {
  const int n = dag.num_nodes();
  const auto reach = transitive_closure(dag);
  Dag reduced(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : dag.successors(v)) {
      // Edge v->w is redundant iff some other successor u of v reaches w.
      bool redundant = false;
      for (NodeId u : dag.successors(v)) {
        if (u != w && reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(w)]) {
          redundant = true;
          break;
        }
      }
      if (!redundant) reduced.add_edge(v, w);
    }
  }
  return reduced;
}

int height(const Dag& dag) {
  if (dag.num_nodes() == 0) return 0;
  const std::vector<double> unit(static_cast<std::size_t>(dag.num_nodes()), 1.0);
  return static_cast<int>(longest_path(dag, unit) + 0.5);
}

}  // namespace malsched::graph
