// GraphViz DOT export for precedence graphs and schedules.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/dag.hpp"

namespace malsched::graph {

/// Writes `dag` in DOT format. `labels` may be empty (node ids are used) or
/// contain one label per node.
void write_dot(std::ostream& os, const Dag& dag,
               const std::vector<std::string>& labels = {});

}  // namespace malsched::graph
