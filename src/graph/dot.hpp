// GraphViz DOT export for precedence graphs and schedules.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/dag.hpp"

namespace malsched::graph {

/// Writes `dag` in DOT format. `labels` may be empty (node ids are used) or
/// contain one label per node.
void write_dot(std::ostream& os, const Dag& dag,
               const std::vector<std::string>& labels = {});

/// Per-node presentation for write_dot_styled. Empty fields are omitted
/// from the node's attribute list. Labels are emitted verbatim, so DOT
/// escapes (e.g. "\\n") pass through.
struct DotNodeStyle {
  std::string label;
  std::string fillcolor;  ///< e.g. "#cfe8ff"; nodes with one get style=filled
};

/// Writes `dag` in DOT format with one style per node (`styles` empty = no
/// attributes, otherwise one entry per node). The schedule exporter uses
/// this to color nodes by start time.
void write_dot_styled(std::ostream& os, const Dag& dag,
                      const std::vector<DotNodeStyle>& styles);

}  // namespace malsched::graph
