#include "graph/generators.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/assert.hpp"

namespace malsched::graph {

Dag make_chain(int n) {
  Dag dag(n);
  for (NodeId v = 0; v + 1 < n; ++v) dag.add_edge_unique(v, v + 1);
  return dag;
}

Dag make_independent(int n) { return Dag(n); }

Dag make_fork_join(int n_parallel) {
  MALSCHED_ASSERT(n_parallel >= 1);
  Dag dag(n_parallel + 2);
  const NodeId source = 0;
  const NodeId sink = n_parallel + 1;
  for (int i = 1; i <= n_parallel; ++i) {
    dag.add_edge_unique(source, i);
    dag.add_edge_unique(i, sink);
  }
  return dag;
}

Dag make_layered(int layers, int width, int max_fan_in, support::Rng& rng) {
  MALSCHED_ASSERT(layers >= 1 && width >= 1 && max_fan_in >= 1);
  Dag dag(layers * width);
  auto node = [width](int layer, int idx) { return layer * width + idx; };
  for (int layer = 1; layer < layers; ++layer) {
    for (int idx = 0; idx < width; ++idx) {
      const int fan = rng.uniform_int(1, std::min(max_fan_in, width));
      for (int k = 0; k < fan; ++k) {
        dag.add_edge(node(layer - 1, rng.uniform_int(0, width - 1)), node(layer, idx));
      }
    }
  }
  return dag;
}

Dag make_random_dag(int n, double edge_probability, support::Rng& rng) {
  Dag dag(n);
  // Each (i, j) pair is visited exactly once, so the duplicate scan of
  // add_edge is pure overhead — at n >= 10k the unchecked path is what keeps
  // generation from dominating the large-n benches.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(edge_probability)) dag.add_edge_unique(i, j);
    }
  }
  return dag;
}

namespace {

// Recursive series-parallel builder returning (entry, exit) of a component
// carved out of fresh nodes in `dag`.
std::pair<NodeId, NodeId> build_sp(Dag& dag, int budget, support::Rng& rng) {
  if (budget <= 1) {
    const NodeId v = dag.add_node();
    return {v, v};
  }
  if (budget == 2) {
    const NodeId a = dag.add_node();
    const NodeId b = dag.add_node();
    dag.add_edge(a, b);
    return {a, b};
  }
  const int left_budget = rng.uniform_int(1, budget - 1);
  const int right_budget = budget - left_budget;
  const auto [l_in, l_out] = build_sp(dag, left_budget, rng);
  const auto [r_in, r_out] = build_sp(dag, right_budget, rng);
  if (rng.bernoulli(0.5)) {
    // Series composition.
    dag.add_edge(l_out, r_in);
    return {l_in, r_out};
  }
  // Parallel composition with explicit join/fork nodes to stay a 2-terminal
  // series-parallel graph.
  const NodeId fork = dag.add_node();
  const NodeId join = dag.add_node();
  dag.add_edge(fork, l_in);
  dag.add_edge(fork, r_in);
  dag.add_edge(l_out, join);
  dag.add_edge(r_out, join);
  return {fork, join};
}

}  // namespace

Dag make_series_parallel(int n, support::Rng& rng) {
  MALSCHED_ASSERT(n >= 1);
  Dag dag;
  build_sp(dag, n, rng);
  return dag;
}

Dag make_intree(int levels) {
  MALSCHED_ASSERT(levels >= 1);
  const int n = (1 << levels) - 1;
  Dag dag(n);
  // Heap layout: node v has children 2v+1, 2v+2; edges point child -> parent
  // (computation flows from the leaves to the root).
  for (NodeId v = 0; v < n; ++v) {
    const NodeId left = 2 * v + 1;
    const NodeId right = 2 * v + 2;
    if (left < n) dag.add_edge_unique(left, v);
    if (right < n) dag.add_edge_unique(right, v);
  }
  return dag;
}

Dag make_outtree(int levels) {
  MALSCHED_ASSERT(levels >= 1);
  const int n = (1 << levels) - 1;
  Dag dag(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId left = 2 * v + 1;
    const NodeId right = 2 * v + 2;
    if (left < n) dag.add_edge_unique(v, left);
    if (right < n) dag.add_edge_unique(v, right);
  }
  return dag;
}

namespace {

// Shared helper assigning dense ids to kernel instances keyed by
// (kind, i, j, k).
class KernelIds {
 public:
  explicit KernelIds(Dag& dag) : dag_(dag) {}

  NodeId get(int kind, int i, int j, int k) {
    const auto key = std::make_tuple(kind, i, j, k);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    const NodeId v = dag_.add_node();
    ids_.emplace(key, v);
    return v;
  }

 private:
  Dag& dag_;
  std::map<std::tuple<int, int, int, int>, NodeId> ids_;
};

enum CholKind { kPotrf = 0, kTrsm = 1, kSyrk = 2, kGemm = 3 };
enum LuKind { kGetrf = 0, kTrsmRow = 1, kTrsmCol = 2, kLuGemm = 3 };

}  // namespace

Dag make_tiled_cholesky(int t) {
  MALSCHED_ASSERT(t >= 1);
  Dag dag;
  KernelIds ids(dag);
  // Right-looking tiled Cholesky (see e.g. the PLASMA/StarPU literature):
  // for k in 0..t-1:
  //   POTRF(k)                        after SYRK(k,k-1 updates)
  //   for i in k+1..t-1: TRSM(i,k)    needs POTRF(k) and GEMM updates
  //   for i in k+1..t-1:
  //     SYRK(i,k) updates A(i,i)      needs TRSM(i,k)
  //     for j in k+1..i-1: GEMM(i,j,k) needs TRSM(i,k), TRSM(j,k)
  for (int k = 0; k < t; ++k) {
    const NodeId potrf = ids.get(kPotrf, k, 0, 0);
    if (k > 0) dag.add_edge(ids.get(kSyrk, k, k - 1, 0), potrf);
    for (int i = k + 1; i < t; ++i) {
      const NodeId trsm = ids.get(kTrsm, i, k, 0);
      dag.add_edge(potrf, trsm);
      if (k > 0) dag.add_edge(ids.get(kGemm, i, k, k - 1), trsm);
      const NodeId syrk = ids.get(kSyrk, i, k, 0);
      dag.add_edge(trsm, syrk);
      if (k > 0) dag.add_edge(ids.get(kSyrk, i, k - 1, 0), syrk);
      for (int j = k + 1; j < i; ++j) {
        const NodeId gemm = ids.get(kGemm, i, j, k);
        dag.add_edge(trsm, gemm);
        dag.add_edge(ids.get(kTrsm, j, k, 0), gemm);
        if (k > 0) dag.add_edge(ids.get(kGemm, i, j, k - 1), gemm);
      }
    }
  }
  return dag;
}

int tiled_cholesky_size(int t) {
  // POTRF: t, TRSM: t(t-1)/2, SYRK: t(t-1)/2, GEMM: sum_k sum_i (i-k-1).
  int gemm = 0;
  for (int k = 0; k < t; ++k) {
    for (int i = k + 1; i < t; ++i) gemm += std::max(0, i - k - 1);
  }
  return t + t * (t - 1) + gemm;
}

Dag make_tiled_lu(int t) {
  MALSCHED_ASSERT(t >= 1);
  Dag dag;
  KernelIds ids(dag);
  // Tiled LU without pivoting:
  // for k: GETRF(k,k); row/col TRSMs in panel k; trailing GEMM updates.
  for (int k = 0; k < t; ++k) {
    const NodeId getrf = ids.get(kGetrf, k, 0, 0);
    if (k > 0) dag.add_edge(ids.get(kLuGemm, k, k, k - 1), getrf);
    for (int j = k + 1; j < t; ++j) {
      const NodeId trsm_row = ids.get(kTrsmRow, k, j, 0);
      dag.add_edge(getrf, trsm_row);
      if (k > 0) dag.add_edge(ids.get(kLuGemm, k, j, k - 1), trsm_row);
    }
    for (int i = k + 1; i < t; ++i) {
      const NodeId trsm_col = ids.get(kTrsmCol, i, k, 0);
      dag.add_edge(getrf, trsm_col);
      if (k > 0) dag.add_edge(ids.get(kLuGemm, i, k, k - 1), trsm_col);
    }
    for (int i = k + 1; i < t; ++i) {
      for (int j = k + 1; j < t; ++j) {
        const NodeId gemm = ids.get(kLuGemm, i, j, k);
        dag.add_edge(ids.get(kTrsmCol, i, k, 0), gemm);
        dag.add_edge(ids.get(kTrsmRow, k, j, 0), gemm);
        if (k > 0) dag.add_edge(ids.get(kLuGemm, i, j, k - 1), gemm);
      }
    }
  }
  return dag;
}

int tiled_lu_size(int t) {
  int n = 0;
  for (int k = 0; k < t; ++k) {
    const int r = t - k - 1;
    n += 1 + 2 * r + r * r;
  }
  return n;
}

Dag make_fft(int stages) {
  MALSCHED_ASSERT(stages >= 0);
  const int width = 1 << stages;
  Dag dag((stages + 1) * width);
  auto node = [width](int rank, int idx) { return rank * width + idx; };
  for (int rank = 1; rank <= stages; ++rank) {
    const int stride = 1 << (rank - 1);
    for (int idx = 0; idx < width; ++idx) {
      dag.add_edge_unique(node(rank - 1, idx), node(rank, idx));
      dag.add_edge_unique(node(rank - 1, idx ^ stride), node(rank, idx));
    }
  }
  return dag;
}

Dag make_diamond(int rows, int cols) {
  MALSCHED_ASSERT(rows >= 1 && cols >= 1);
  Dag dag(rows * cols);
  auto node = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r + 1 < rows) dag.add_edge_unique(node(r, c), node(r + 1, c));
      if (c + 1 < cols) dag.add_edge_unique(node(r, c), node(r, c + 1));
    }
  }
  return dag;
}

}  // namespace malsched::graph
