// Directed acyclic graph of precedence constraints.
//
// Nodes are the tasks J_1..J_n of the paper (0-indexed here); an edge (i, j)
// means J_j cannot start before J_i completes. The structure is append-only:
// nodes and edges are added during construction and the graph is immutable
// during scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace malsched::graph {

using NodeId = int;

class Dag {
 public:
  Dag() = default;
  explicit Dag(int num_nodes);

  /// Appends an isolated node, returning its id.
  NodeId add_node();

  /// Adds edge from -> to. Self-loops are rejected; duplicate edges are
  /// ignored. Acyclicity is NOT checked here (see algorithms::is_acyclic).
  void add_edge(NodeId from, NodeId to);

  /// add_edge without the linear duplicate scan, for generators that emit
  /// each (from, to) pair at most once (e.g. the O(n^2) pair sweep of
  /// make_random_dag). Inserting a duplicate through this path corrupts
  /// num_edges(); callers must guarantee uniqueness.
  void add_edge_unique(NodeId from, NodeId to);

  /// Drops every edge for which `keep(from, to)` returns false, in place.
  /// `keep` is invoked once per edge in (node, successor-order) order; while
  /// a node's edges are being queried its successor list is still
  /// unmodified, so the predicate may read successors(from).
  void filter_edges(const std::function<bool(NodeId, NodeId)>& keep);

  int num_nodes() const { return static_cast<int>(successors_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  /// Monotone structure-revision counter: bumped by every mutation that
  /// changes the graph (add_node, successful add_edge / add_edge_unique,
  /// filter_edges). Memos keyed on it (Instance::reduced_predecessors)
  /// stay sound even for edge-count-preserving mutation sequences like
  /// filter-then-re-add, which (node count, edge count) pairs cannot see.
  std::uint64_t revision() const { return revision_; }

  const std::vector<NodeId>& successors(NodeId v) const {
    return successors_[static_cast<std::size_t>(v)];
  }
  const std::vector<NodeId>& predecessors(NodeId v) const {
    return predecessors_[static_cast<std::size_t>(v)];
  }

  bool has_edge(NodeId from, NodeId to) const;

  /// Nodes with no predecessors / successors.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

 private:
  std::vector<std::vector<NodeId>> successors_;
  std::vector<std::vector<NodeId>> predecessors_;
  std::size_t num_edges_ = 0;
  std::uint64_t revision_ = 0;
};

}  // namespace malsched::graph
