// Directed acyclic graph of precedence constraints.
//
// Nodes are the tasks J_1..J_n of the paper (0-indexed here); an edge (i, j)
// means J_j cannot start before J_i completes. The structure is append-only:
// nodes and edges are added during construction and the graph is immutable
// during scheduling.
#pragma once

#include <cstddef>
#include <vector>

namespace malsched::graph {

using NodeId = int;

class Dag {
 public:
  Dag() = default;
  explicit Dag(int num_nodes);

  /// Appends an isolated node, returning its id.
  NodeId add_node();

  /// Adds edge from -> to. Self-loops are rejected; duplicate edges are
  /// ignored. Acyclicity is NOT checked here (see algorithms::is_acyclic).
  void add_edge(NodeId from, NodeId to);

  int num_nodes() const { return static_cast<int>(successors_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  const std::vector<NodeId>& successors(NodeId v) const {
    return successors_[static_cast<std::size_t>(v)];
  }
  const std::vector<NodeId>& predecessors(NodeId v) const {
    return predecessors_[static_cast<std::size_t>(v)];
  }

  bool has_edge(NodeId from, NodeId to) const;

  /// Nodes with no predecessors / successors.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

 private:
  std::vector<std::vector<NodeId>> successors_;
  std::vector<std::vector<NodeId>> predecessors_;
  std::size_t num_edges_ = 0;
};

}  // namespace malsched::graph
