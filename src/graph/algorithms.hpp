// Classic DAG algorithms used throughout the scheduler.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/dag.hpp"

namespace malsched::graph {

/// Kahn topological order; std::nullopt when the graph has a cycle.
std::optional<std::vector<NodeId>> topological_order(const Dag& dag);

bool is_acyclic(const Dag& dag);

/// Longest path (sum of node weights along a directed path, endpoints
/// included). This is the critical path length L of the paper when weights
/// are the tasks' processing times. Requires an acyclic graph.
double longest_path(const Dag& dag, const std::vector<double>& node_weights);

/// Per-node longest path ending at v (inclusive); useful for earliest start
/// lower bounds.
std::vector<double> longest_path_to(const Dag& dag,
                                    const std::vector<double>& node_weights);

/// The actual node sequence of one critical path.
std::vector<NodeId> critical_path_nodes(const Dag& dag,
                                        const std::vector<double>& node_weights);

/// Packed reachability matrix: bit (u, v) set iff there is a non-empty
/// directed path u -> v. Rows are contiguous blocks of 64-bit words, so a
/// whole-row union/intersection is an O(n/64) word sweep — this is what
/// makes transitive closure and reduction usable at n >= 10k, where the
/// historical vector<vector<bool>> representation cost n^2 bytes and
/// bit-at-a-time loops.
class ReachabilityBitset {
 public:
  ReachabilityBitset() = default;
  explicit ReachabilityBitset(int nodes)
      : n_(nodes),
        stride_((static_cast<std::size_t>(nodes) + 63) / 64),
        words_(static_cast<std::size_t>(nodes) * stride_, 0) {}

  int num_nodes() const { return n_; }
  std::size_t words_per_row() const { return stride_; }

  bool reaches(NodeId from, NodeId to) const {
    return (row(from)[static_cast<std::size_t>(to) >> 6] >>
            (static_cast<std::size_t>(to) & 63)) &
           1u;
  }
  void set(NodeId from, NodeId to) {
    mutable_row(from)[static_cast<std::size_t>(to) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(to) & 63);
  }

  const std::uint64_t* row(NodeId v) const {
    return words_.data() + static_cast<std::size_t>(v) * stride_;
  }
  std::uint64_t* mutable_row(NodeId v) {
    return words_.data() + static_cast<std::size_t>(v) * stride_;
  }

  /// row(dst) |= row(src) — one word-level OR sweep.
  void or_row(NodeId dst, NodeId src) {
    std::uint64_t* d = mutable_row(dst);
    const std::uint64_t* s = row(src);
    for (std::size_t k = 0; k < stride_; ++k) d[k] |= s[k];
  }

 private:
  int n_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Transitive closure as a packed bitset: O(edges * n/64) word operations,
/// O(n^2/64) words of memory.
ReachabilityBitset transitive_closure_bitset(const Dag& dag);

/// Boolean reachability matrix (compatibility wrapper over the bitset
/// closure; prefer transitive_closure_bitset for anything size-sensitive).
std::vector<std::vector<bool>> transitive_closure(const Dag& dag);

/// Copy of `dag` with every edge implied by transitivity removed. An edge
/// (v, w) is redundant iff w is reachable from some other successor of v;
/// with the bitset closure that test is one word-level union of the
/// successors' reachability rows per node instead of the historical
/// O(deg^2) pairwise lookups.
Dag transitive_reduction(const Dag& dag);

/// As transitive_reduction, but rewrites `dag` in place (no second adjacency
/// structure is kept alive). Node ids are preserved; only redundant edges
/// disappear.
void transitive_reduction_inplace(Dag& dag);

/// Number of nodes on the longest chain (unit weights).
int height(const Dag& dag);

}  // namespace malsched::graph
