// Classic DAG algorithms used throughout the scheduler.
#pragma once

#include <optional>
#include <vector>

#include "graph/dag.hpp"

namespace malsched::graph {

/// Kahn topological order; std::nullopt when the graph has a cycle.
std::optional<std::vector<NodeId>> topological_order(const Dag& dag);

bool is_acyclic(const Dag& dag);

/// Longest path (sum of node weights along a directed path, endpoints
/// included). This is the critical path length L of the paper when weights
/// are the tasks' processing times. Requires an acyclic graph.
double longest_path(const Dag& dag, const std::vector<double>& node_weights);

/// Per-node longest path ending at v (inclusive); useful for earliest start
/// lower bounds.
std::vector<double> longest_path_to(const Dag& dag,
                                    const std::vector<double>& node_weights);

/// The actual node sequence of one critical path.
std::vector<NodeId> critical_path_nodes(const Dag& dag,
                                        const std::vector<double>& node_weights);

/// Boolean reachability matrix (n^2 bits; for tests and transitive
/// reduction on moderate graphs).
std::vector<std::vector<bool>> transitive_closure(const Dag& dag);

/// Copy of `dag` with every edge implied by transitivity removed.
Dag transitive_reduction(const Dag& dag);

/// Number of nodes on the longest chain (unit weights).
int height(const Dag& dag);

}  // namespace malsched::graph
