// Synthetic precedence-graph families.
//
// The paper's evaluation is analytic, so the empirical suite needs workload
// DAGs; these families cover the shapes the malleable-task literature uses:
// chains and independent sets (extremes of the L vs W/m tradeoff), fork-join
// and layered graphs (data-parallel phases, e.g. the ocean-circulation
// application of Blayo et al. that motivated Assumption 2'), series-parallel
// graphs and trees (the [17]/[18] special cases), and dense numerical
// kernels (tiled Cholesky, tiled LU, FFT butterfly) whose task graphs are
// standard in runtime-system papers.
#pragma once

#include "graph/dag.hpp"
#include "support/rng.hpp"

namespace malsched::graph {

/// 0 -> 1 -> ... -> n-1.
Dag make_chain(int n);

/// n isolated nodes.
Dag make_independent(int n);

/// source -> {n_parallel middle nodes} -> sink.
Dag make_fork_join(int n_parallel);

/// `layers` layers of `width` nodes; each node gets 1..max_fan_in random
/// predecessors from the previous layer.
Dag make_layered(int layers, int width, int max_fan_in, support::Rng& rng);

/// Random DAG: edge (i, j), i < j, present with probability p.
Dag make_random_dag(int n, double edge_probability, support::Rng& rng);

/// Random series-parallel graph with ~n nodes built by recursive series /
/// parallel composition.
Dag make_series_parallel(int n, support::Rng& rng);

/// Complete binary in-tree (leaves feed upward to a single root sink) with
/// `levels` levels, 2^levels - 1 nodes.
Dag make_intree(int levels);

/// Complete binary out-tree (root source fans out) with `levels` levels.
Dag make_outtree(int levels);

/// Task graph of a tiled (right-looking) Cholesky factorization on a
/// t x t lower-triangular tile grid: POTRF/TRSM/SYRK/GEMM dependency
/// structure; n = t(t+1)(t+2)/6 + ... tasks.
Dag make_tiled_cholesky(int tiles);

/// Task graph of a tiled LU factorization without pivoting on a t x t grid:
/// GETRF/TRSM(row)/TRSM(col)/GEMM structure.
Dag make_tiled_lu(int tiles);

/// FFT butterfly DAG over 2^stages points: stages+1 ranks of 2^stages nodes.
Dag make_fft(int stages);

/// Diamond / 2D wavefront DAG on a rows x cols grid: (i,j) -> (i+1,j) and
/// (i,j) -> (i,j+1).
Dag make_diamond(int rows, int cols);

/// Node count of make_tiled_cholesky(tiles) (for sizing experiments).
int tiled_cholesky_size(int tiles);

/// Node count of make_tiled_lu(tiles).
int tiled_lu_size(int tiles);

}  // namespace malsched::graph
